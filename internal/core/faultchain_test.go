package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/signal"
)

// TestFallbackChainUnderInjectedFaults drives the real solvers — not
// stubs — through the fallback chain with deterministic faults armed at
// the compiled-in activation sites, and asserts each failure mode lands on
// exactly the documented degradation path.
func TestFallbackChainUnderInjectedFaults(t *testing.T) {
	cases := []struct {
		name string
		plan func() *faultinject.Plan
		opt  Options

		ctxTimeout time.Duration // overall run deadline (0 = none)

		wantSolver   string
		wantDegraded bool
		wantTimedOut bool
		allowEmpty   bool     // timed-out rows may have routed nothing
		wantAttempts []string // substring per attempt, in order
	}{
		{
			name: "ilp-panic-degrades-to-hier",
			plan: func() *faultinject.Plan {
				return faultinject.NewPlan().Arm(faultinject.ExactSolve, faultinject.Action{Panic: "chaos"})
			},
			opt:          Options{Method: ILP, Fallback: Fallback{Enabled: true}},
			wantSolver:   Hierarchical.String(),
			wantDegraded: true,
			wantAttempts: []string{"panicked"},
		},
		{
			name: "ilp-timeout-degrades-to-hier",
			plan: func() *faultinject.Plan {
				return faultinject.NewPlan().Arm(faultinject.ExactSolve, faultinject.Action{Delay: 2 * time.Second})
			},
			opt:          Options{Method: ILP, ILPTimeLimit: 30 * time.Millisecond, Fallback: Fallback{Enabled: true}},
			wantSolver:   Hierarchical.String(),
			wantDegraded: true,
			wantAttempts: []string{"timed out"},
		},
		{
			name: "ilp-injected-error-degrades-to-hier",
			plan: func() *faultinject.Plan {
				return faultinject.NewPlan().Arm(faultinject.ExactSolve, faultinject.Action{Err: "solver backend down"})
			},
			opt:          Options{Method: ILP, Fallback: Fallback{Enabled: true}},
			wantSolver:   Hierarchical.String(),
			wantDegraded: true,
			wantAttempts: []string{"solver backend down"},
		},
		{
			name: "simplex-infeasible-degrades-to-hier",
			plan: func() *faultinject.Plan {
				// Every LP relaxation reports infeasible: the monolithic ILP
				// fails outright; the hierarchical tile ILPs fail too, but
				// its greedy sweep still routes, so the chain stops there.
				return faultinject.NewPlan().Arm(faultinject.Simplex, faultinject.Action{Err: "lp corrupted"})
			},
			opt:          Options{Method: ILP, Fallback: Fallback{Enabled: true}},
			wantSolver:   Hierarchical.String(),
			wantDegraded: true,
			wantAttempts: []string{"infeasible"},
		},
		{
			name: "hier-timeout-is-reported-not-degraded",
			plan: func() *faultinject.Plan {
				// Stall the first tile past the caller's overall deadline:
				// the hierarchical rung returns its (possibly empty) partial
				// as a timed-out result — degrading further would be useless
				// because every later rung shares the expired deadline.
				return faultinject.NewPlan().Arm(faultinject.HierTile, faultinject.Action{Delay: 10 * time.Second})
			},
			opt: Options{
				Method: Hierarchical, HierWorkers: 1,
				Fallback: Fallback{Enabled: true},
			},
			ctxTimeout:   80 * time.Millisecond,
			wantSolver:   Hierarchical.String(),
			wantTimedOut: true,
			allowEmpty:   true,
		},
		{
			name: "hier-tile-panic-degrades-to-pd",
			plan: func() *faultinject.Plan {
				return faultinject.NewPlan().Arm(faultinject.HierTile, faultinject.Action{Panic: "tile chaos"})
			},
			opt:          Options{Method: Hierarchical, HierWorkers: 1, Fallback: Fallback{Enabled: true}},
			wantSolver:   PrimalDual.String(),
			wantDegraded: true,
			wantAttempts: []string{"panicked"},
		},
		{
			name: "hier-tile-panic-parallel-schedule-degrades-to-pd",
			plan: func() *faultinject.Plan {
				return faultinject.NewPlan().Arm(faultinject.HierTile, faultinject.Action{Panic: "tile chaos"})
			},
			opt:          Options{Method: Hierarchical, HierWorkers: 4, Fallback: Fallback{Enabled: true}},
			wantSolver:   PrimalDual.String(),
			wantDegraded: true,
			wantAttempts: []string{"panicked"},
		},
	}

	p := testProblem(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := faultinject.With(context.Background(), tc.plan())
			if tc.ctxTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, tc.ctxTimeout)
				defer cancel()
			}
			res, err := RunProblemCtx(ctx, p, tc.opt)
			if err != nil {
				t.Fatalf("RunProblemCtx: %v", err)
			}
			if res.SolverUsed != tc.wantSolver {
				t.Errorf("SolverUsed = %q, want %q", res.SolverUsed, tc.wantSolver)
			}
			if res.Degraded != tc.wantDegraded {
				t.Errorf("Degraded = %v, want %v", res.Degraded, tc.wantDegraded)
			}
			if tc.wantTimedOut && !res.TimedOut {
				t.Error("TimedOut = false, want true")
			}
			if len(res.Attempts) != len(tc.wantAttempts) {
				t.Fatalf("Attempts = %+v, want %d entries", res.Attempts, len(tc.wantAttempts))
			}
			for i, frag := range tc.wantAttempts {
				if !strings.Contains(res.Attempts[i].Err, frag) {
					t.Errorf("attempt %d = %+v, want err containing %q", i, res.Attempts[i], frag)
				}
			}
			if !tc.allowEmpty && res.Assignment.RoutedObjects() == 0 {
				t.Error("degraded run routed nothing")
			}
			// The result of every degradation path must still be legal.
			rep := audit.Check(p.Design, p.Grid, res.Routing)
			if !rep.OK() {
				t.Errorf("degraded routing fails the audit: %s", rep.Summary())
			}
		})
	}
}

// TestChainExhaustionReturnsTypedError arms a panic at every solver rung:
// the chain must exhaust, return an *ExhaustedError naming all three
// failed rungs, and still expose the root-cause *PanicError via errors.As.
func TestChainExhaustionReturnsTypedError(t *testing.T) {
	p := testProblem(t)
	plan := faultinject.NewPlan().
		Arm(faultinject.ExactSolve, faultinject.Action{Panic: "chaos"}).
		Arm(faultinject.HierTile, faultinject.Action{Panic: "chaos"}).
		Arm(faultinject.PDSolve, faultinject.Action{Panic: "chaos"})
	ctx := faultinject.With(context.Background(), plan)
	res, err := RunProblemCtx(ctx, p, Options{Method: ILP, Fallback: Fallback{Enabled: true}})
	if res != nil {
		t.Error("exhausted chain returned a result")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if len(ex.Attempts) != 3 {
		t.Fatalf("Attempts = %+v, want 3", ex.Attempts)
	}
	wantRungs := []string{ILP.String(), Hierarchical.String(), PrimalDual.String()}
	for i, want := range wantRungs {
		if ex.Attempts[i].Solver != want {
			t.Errorf("attempt %d solver = %q, want %q", i, ex.Attempts[i].Solver, want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name rung %q", err, want)
		}
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("root cause not a *PanicError: %v", err)
	}
}

// TestCapacityCorruptionCaughtByAudit corrupts the primal-dual solver's
// internal capacity bookkeeping on a deliberately contended design: the
// solver double-books the only horizontal track, and the independent
// legality audit must catch the overflow (warn mode reports it, strict
// mode fails the run with the report attached).
func TestCapacityCorruptionCaughtByAudit(t *testing.T) {
	// Two single-bit groups whose straight routes share one row of H edges
	// on the only horizontal layer; EdgeCap 1 admits exactly one of them.
	d := &signal.Design{
		Name: "contended",
		Grid: signal.GridSpec{W: 24, H: 8, NumLayers: 2, EdgeCap: 1},
		Groups: []signal.Group{
			{Name: "a", Bits: []signal.Bit{{Name: "a0", Driver: 0,
				Pins: []signal.Pin{{Loc: geom.Pt(2, 4)}, {Loc: geom.Pt(20, 4)}}}}},
			{Name: "b", Bits: []signal.Bit{{Name: "b0", Driver: 0,
				Pins: []signal.Pin{{Loc: geom.Pt(2, 4)}, {Loc: geom.Pt(20, 4)}}}}},
		},
	}

	// Sanity: the uncorrupted solve stays legal.
	clean, err := Run(d, Options{Method: PrimalDual, Audit: AuditStrict})
	if err != nil {
		t.Fatalf("clean run failed strict audit: %v", err)
	}
	if clean.Audit == nil || !clean.Audit.OK() {
		t.Fatal("clean run has dirty audit")
	}

	plan := faultinject.NewPlan().Arm(faultinject.PDCapacity, faultinject.Action{Corrupt: true})
	ctx := faultinject.With(context.Background(), plan)
	res, err := RunCtx(ctx, d, Options{Method: PrimalDual, Audit: AuditWarn})
	if err != nil {
		t.Fatalf("corrupted run errored before audit: %v", err)
	}
	if plan.Fired(faultinject.PDCapacity) == 0 {
		t.Fatal("corruption site never fired")
	}
	if res.Audit == nil || res.Audit.Count(audit.OverCapacity) == 0 {
		t.Fatalf("audit missed the injected overflow: %+v", res.Audit)
	}

	// Strict mode turns the caught corruption into a failed run with the
	// populated result attached for diagnosis.
	ctx = faultinject.With(context.Background(),
		faultinject.NewPlan().Arm(faultinject.PDCapacity, faultinject.Action{Corrupt: true}))
	res, err = RunCtx(ctx, d, Options{Method: PrimalDual, Audit: AuditStrict})
	if err == nil {
		t.Fatal("strict audit accepted corrupted capacities")
	}
	if res == nil || res.Audit == nil || res.Audit.OK() {
		t.Error("strict failure missing the diagnostic report")
	}
}

// TestPDCommitFaultReturnsPartial pins the pd.commit seam: an injected
// error mid-solve surfaces as a failed primal-dual rung carrying the
// partial (legal) assignment semantics the cancellation path has.
func TestPDCommitFaultReturnsPartial(t *testing.T) {
	p := testProblem(t)
	plan := faultinject.NewPlan().Arm(faultinject.PDCommit, faultinject.Action{Err: "commit chaos", After: 3})
	ctx := faultinject.With(context.Background(), plan)
	_, err := RunProblemCtx(ctx, p, Options{Method: PrimalDual})
	if err == nil || !strings.Contains(err.Error(), "commit chaos") {
		t.Fatalf("err = %v, want injected commit failure", err)
	}
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Errorf("injected error type lost: %v", err)
	}
}
