// Package core orchestrates the complete Streak flow of Fig. 2: problem
// construction (identification + topology generation + candidate
// expansion), global candidate selection by primal-dual or exact ILP, the
// post-optimization stage (layer prediction + bottom-up clustering +
// distance refinement), and metric evaluation.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/postopt"
	"repro/internal/route"
	"repro/internal/signal"
)

// Method selects the global candidate-selection solver.
type Method int

const (
	// PrimalDual runs Algorithm 2 (the paper's fast flow).
	PrimalDual Method = iota
	// ILP solves formulation (3) exactly (the paper's GUROBI flow).
	ILP
	// Hierarchical runs the divide-and-conquer exact flow sketched in the
	// paper's future work (§VI): per-tile ILPs against residual capacity
	// plus a greedy sweep.
	Hierarchical
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ILP:
		return "ILP"
	case Hierarchical:
		return "Hierarchical-ILP"
	default:
		return "Primal-Dual"
	}
}

// Options configures a Streak run.
type Options struct {
	// Method picks the selection solver. Default PrimalDual.
	Method Method
	// Route tunes problem construction.
	Route route.Options
	// Post tunes the post-optimization stage.
	Post postopt.Options
	// PostOpt enables the post-optimization stage (Table II adds it on
	// top of the Table I flows).
	PostOpt bool
	// Clustering enables bottom-up clustering within post-optimization
	// (Fig. 14 ablates it).
	Clustering bool
	// Refinement enables the distance refinement within post-optimization
	// (Fig. 15 ablates it).
	Refinement bool
	// ILPTimeLimit bounds the exact solve; the paper uses 3600 s.
	// Zero means no limit.
	ILPTimeLimit time.Duration
	// ILPWarmStart primes the exact solver with the primal-dual solution.
	ILPWarmStart bool
	// ILPMaxVars guards against over-large linearized models (see
	// exact.Options).
	ILPMaxVars int
	// HierTiles is the tile grid dimension for the Hierarchical method
	// (default 2).
	HierTiles int
	// HierTimePerTile bounds each tile ILP (default 5s).
	HierTimePerTile time.Duration
	// HierWorkers bounds how many hierarchical tile ILPs solve
	// concurrently (below 2 keeps the sequential tile schedule; see
	// hier.Options.Workers).
	HierWorkers int
	// Fallback configures graceful degradation across solvers (panic,
	// timeout-with-nothing, oversized model, infeasibility).
	Fallback Fallback
	// Audit selects the post-solve legality audit mode. Default AuditOff.
	Audit AuditMode
}

// AuditMode selects how the post-solve legality audit behaves.
type AuditMode int

const (
	// AuditOff skips the audit.
	AuditOff AuditMode = iota
	// AuditWarn runs the audit and attaches the report to the result;
	// violations do not fail the run.
	AuditWarn
	// AuditStrict runs the audit and fails the run on any violation. The
	// populated result is returned alongside the error for diagnosis.
	AuditStrict
)

// String names the mode.
func (m AuditMode) String() string {
	switch m {
	case AuditWarn:
		return "warn"
	case AuditStrict:
		return "strict"
	default:
		return "off"
	}
}

// Result carries everything a Streak run produced.
type Result struct {
	// Problem is the built selection problem (kept for inspection and for
	// chaining experiments).
	Problem *route.Problem
	// Assignment is the global selection.
	Assignment route.Assignment
	// Routing is the final per-bit geometry (after post-optimization when
	// enabled).
	Routing *route.Routing
	// Usage is the final track usage.
	Usage *grid.Usage
	// Metrics is the evaluated result row.
	Metrics metrics.Metrics
	// TimedOut reports whether the ILP hit its time limit.
	TimedOut bool
	// VioBefore is the Vio(dst) count before refinement (Table II's first
	// column); equal to Metrics.VioDst when refinement is off.
	VioBefore int
	// Cluster and Refine carry post-optimization statistics.
	Cluster postopt.ClusterStats
	// Refine carries refinement statistics (zero when disabled).
	Refine postopt.RefineStats
	// Runtime is the end-to-end wall-clock time (problem build excluded,
	// matching the paper's solver CPU column).
	Runtime time.Duration
	// SolverUsed names the solver that produced the assignment.
	SolverUsed string
	// Degraded is true when a fallback rung — not the requested method —
	// produced the assignment.
	Degraded bool
	// Attempts records the failed rungs of the fallback chain, in order.
	Attempts []Attempt
	// Audit is the legality report (nil when Options.Audit is AuditOff).
	Audit *audit.Report
}

// Run executes the Streak flow on the design.
func Run(d *signal.Design, opt Options) (*Result, error) {
	return RunCtx(context.Background(), d, opt)
}

// RunCtx is Run honoring the context: cancellation and deadlines propagate
// into every stage — exact branch and bound (per node and inside long LP
// relaxations), the hierarchical per-tile solves, the primal-dual commit
// loop, and the post-optimization cluster/refine loops — so the call
// returns promptly with ctx's error.
func RunCtx(ctx context.Context, d *signal.Design, opt Options) (*Result, error) {
	ctx, end := rootSpan(ctx)
	defer end()
	p, err := route.BuildCtx(ctx, d, opt.Route)
	if err != nil {
		return nil, err
	}
	return RunProblemCtx(ctx, p, opt)
}

// rootSpan opens the flow's root "run" span so every stage span nests under
// one top-level interval in traces. It is a no-op when no recorder is
// attached or a span is already open on the context (RunCtx opens it once;
// RunProblemCtx reuses it).
func rootSpan(ctx context.Context) (context.Context, func()) {
	rec := obs.FromContext(ctx)
	if rec == nil || obs.SpanFromContext(ctx) != nil {
		return ctx, func() {}
	}
	sp := rec.StartSpan("run")
	return obs.WithSpan(ctx, sp), sp.End
}

// RunProblem executes the flow on a pre-built problem, letting callers
// reuse one problem across solver comparisons.
func RunProblem(p *route.Problem, opt Options) (*Result, error) {
	return RunProblemCtx(context.Background(), p, opt)
}

// RunProblemCtx is RunProblem honoring the context; see RunCtx. With
// Options.Fallback enabled a failing solver rung degrades to the next one
// instead of failing the run; context cancellation is never swallowed.
// In AuditStrict mode the populated result is returned alongside the audit
// error so callers can inspect the violations.
func RunProblemCtx(ctx context.Context, p *route.Problem, opt Options) (*Result, error) {
	if opt.Method < PrimalDual || opt.Method > Hierarchical {
		return nil, fmt.Errorf("core: unknown method %d", opt.Method)
	}
	ctx, end := rootSpan(ctx)
	defer end()
	start := time.Now()
	res := &Result{Problem: p}

	rungs := opt.chain()
	solved := false
	for ri, s := range rungs {
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			// Only cancellation aborts outright; an expired deadline lets
			// the rung return its best (possibly empty) timed-out outcome.
			return nil, fmt.Errorf("core: %w", err)
		}
		out, err := runRung(ctx, s, p, opt)
		if err == nil && out.TimedOut && out.Assignment.RoutedObjects() == 0 && ri+1 < len(rungs) && ctx.Err() == nil {
			// A timeout that produced nothing is a failure worth degrading
			// from — unless the caller's own deadline expired, in which case
			// every later rung would time out identically and the empty
			// timed-out result stands. Without further rungs it stays a
			// (reported) timeout either way.
			err = fmt.Errorf("core: solver %s timed out with no feasible selection", s.Name())
		}
		if err != nil {
			if cerr := ctx.Err(); errors.Is(cerr, context.Canceled) {
				// The rung failed because the caller gave up; report the
				// cancellation, not the rung.
				return nil, fmt.Errorf("core: %w", cerr)
			}
			res.Attempts = append(res.Attempts, Attempt{Solver: s.Name(), Err: err.Error()})
			if ri+1 < len(rungs) {
				continue
			}
			// The chain is exhausted: surface every failed rung, not just
			// the last, so callers can report the whole degradation history.
			return nil, &ExhaustedError{Attempts: res.Attempts, cause: err}
		}
		res.Assignment = out.Assignment
		res.TimedOut = out.TimedOut
		res.SolverUsed = s.Name()
		res.Degraded = ri > 0
		solved = true
		break
	}
	if !solved {
		return nil, fmt.Errorf("core: no solver produced a result")
	}
	if rec := obs.FromContext(ctx); rec != nil {
		rec.SetLabel("solver", res.SolverUsed)
		if res.Degraded {
			rec.SetLabel("degraded", "true")
		}
		rec.Add(obs.CounterFallbackAttempts, int64(len(res.Attempts)))
	}

	res.Routing = p.ExtractRouting(res.Assignment)
	res.Usage = res.Routing.UsageOf(p.Grid)

	if opt.PostOpt {
		var postErr error
		if opt.Clustering {
			stats, err := postopt.ClusterAndRouteCtx(ctx, p, res.Routing, res.Usage, opt.Post)
			res.Cluster = stats
			postErr = err
		}
		res.VioBefore = postopt.CountViolatedGroups(p.Design, res.Routing, opt.Post)
		if postErr == nil && opt.Refinement {
			stats, err := postopt.RefineCtx(ctx, p, res.Routing, res.Usage, opt.Post)
			res.Refine = stats
			postErr = err
		}
		if postErr != nil {
			if !errors.Is(postErr, context.DeadlineExceeded) {
				return nil, fmt.Errorf("core: %w", postErr)
			}
			// An expired deadline truncates post-optimization; the partial
			// routing stays legal, so — as in the solver legs — it is a
			// timed-out result, not an error.
			res.TimedOut = true
		}
	} else {
		res.VioBefore = postopt.CountViolatedGroups(p.Design, res.Routing, opt.Post)
	}

	res.Runtime = time.Since(start)
	_ = obs.Do(ctx, obs.StageMetrics, 0, func(context.Context) error {
		res.Metrics = metrics.Compute(p.Design, res.Routing, res.Usage, opt.Post)
		return nil
	})
	res.Metrics.Runtime = res.Runtime

	if opt.Audit != AuditOff {
		rep := audit.CheckCtx(ctx, p.Design, p.Grid, res.Routing)
		res.Audit = &rep
		if opt.Audit == AuditStrict {
			if err := rep.Err(); err != nil {
				return res, fmt.Errorf("core: %w", err)
			}
		}
	}
	return res, nil
}
