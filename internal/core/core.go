// Package core orchestrates the complete Streak flow of Fig. 2: problem
// construction (identification + topology generation + candidate
// expansion), global candidate selection by primal-dual or exact ILP, the
// post-optimization stage (layer prediction + bottom-up clustering +
// distance refinement), and metric evaluation.
package core

import (
	"fmt"
	"time"

	"repro/internal/exact"
	"repro/internal/grid"
	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/pd"
	"repro/internal/postopt"
	"repro/internal/route"
	"repro/internal/signal"
)

// Method selects the global candidate-selection solver.
type Method int

const (
	// PrimalDual runs Algorithm 2 (the paper's fast flow).
	PrimalDual Method = iota
	// ILP solves formulation (3) exactly (the paper's GUROBI flow).
	ILP
	// Hierarchical runs the divide-and-conquer exact flow sketched in the
	// paper's future work (§VI): per-tile ILPs against residual capacity
	// plus a greedy sweep.
	Hierarchical
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ILP:
		return "ILP"
	case Hierarchical:
		return "Hierarchical-ILP"
	default:
		return "Primal-Dual"
	}
}

// Options configures a Streak run.
type Options struct {
	// Method picks the selection solver. Default PrimalDual.
	Method Method
	// Route tunes problem construction.
	Route route.Options
	// Post tunes the post-optimization stage.
	Post postopt.Options
	// PostOpt enables the post-optimization stage (Table II adds it on
	// top of the Table I flows).
	PostOpt bool
	// Clustering enables bottom-up clustering within post-optimization
	// (Fig. 14 ablates it).
	Clustering bool
	// Refinement enables the distance refinement within post-optimization
	// (Fig. 15 ablates it).
	Refinement bool
	// ILPTimeLimit bounds the exact solve; the paper uses 3600 s.
	// Zero means no limit.
	ILPTimeLimit time.Duration
	// ILPWarmStart primes the exact solver with the primal-dual solution.
	ILPWarmStart bool
	// ILPMaxVars guards against over-large linearized models (see
	// exact.Options).
	ILPMaxVars int
	// HierTiles is the tile grid dimension for the Hierarchical method
	// (default 2).
	HierTiles int
	// HierTimePerTile bounds each tile ILP (default 5s).
	HierTimePerTile time.Duration
}

// Result carries everything a Streak run produced.
type Result struct {
	// Problem is the built selection problem (kept for inspection and for
	// chaining experiments).
	Problem *route.Problem
	// Assignment is the global selection.
	Assignment route.Assignment
	// Routing is the final per-bit geometry (after post-optimization when
	// enabled).
	Routing *route.Routing
	// Usage is the final track usage.
	Usage *grid.Usage
	// Metrics is the evaluated result row.
	Metrics metrics.Metrics
	// TimedOut reports whether the ILP hit its time limit.
	TimedOut bool
	// VioBefore is the Vio(dst) count before refinement (Table II's first
	// column); equal to Metrics.VioDst when refinement is off.
	VioBefore int
	// Cluster and Refine carry post-optimization statistics.
	Cluster postopt.ClusterStats
	// Refine carries refinement statistics (zero when disabled).
	Refine postopt.RefineStats
	// Runtime is the end-to-end wall-clock time (problem build excluded,
	// matching the paper's solver CPU column).
	Runtime time.Duration
}

// Run executes the Streak flow on the design.
func Run(d *signal.Design, opt Options) (*Result, error) {
	p, err := route.Build(d, opt.Route)
	if err != nil {
		return nil, err
	}
	return RunProblem(p, opt)
}

// RunProblem executes the flow on a pre-built problem, letting callers
// reuse one problem across solver comparisons.
func RunProblem(p *route.Problem, opt Options) (*Result, error) {
	start := time.Now()
	res := &Result{Problem: p}

	switch opt.Method {
	case PrimalDual:
		r := pd.Solve(p)
		res.Assignment = r.Assignment
	case ILP:
		eopt := exact.Options{TimeLimit: opt.ILPTimeLimit, MaxVars: opt.ILPMaxVars}
		if opt.ILPWarmStart {
			warm := pd.Solve(p)
			eopt.WarmStart = &warm.Assignment
		}
		r, err := exact.Solve(p, eopt)
		if err != nil {
			return nil, err
		}
		res.Assignment = r.Assignment
		res.TimedOut = r.TimedOut
	case Hierarchical:
		r := hier.Solve(p, hier.Options{Tiles: opt.HierTiles, TimePerTile: opt.HierTimePerTile})
		res.Assignment = r.Assignment
		res.TimedOut = r.TilesTimedOut > 0
	default:
		return nil, fmt.Errorf("core: unknown method %d", opt.Method)
	}

	res.Routing = p.ExtractRouting(res.Assignment)
	res.Usage = res.Routing.UsageOf(p.Grid)

	if opt.PostOpt {
		if opt.Clustering {
			res.Cluster = postopt.ClusterAndRoute(p, res.Routing, res.Usage, opt.Post)
		}
		res.VioBefore = postopt.CountViolatedGroups(p.Design, res.Routing, opt.Post)
		if opt.Refinement {
			res.Refine = postopt.Refine(p, res.Routing, res.Usage, opt.Post)
		}
	} else {
		res.VioBefore = postopt.CountViolatedGroups(p.Design, res.Routing, opt.Post)
	}

	res.Runtime = time.Since(start)
	res.Metrics = metrics.Compute(p.Design, res.Routing, res.Usage, opt.Post)
	res.Metrics.Runtime = res.Runtime
	return res, nil
}
