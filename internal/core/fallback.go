package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/exact"
	"repro/internal/hier"
	"repro/internal/pd"
	"repro/internal/route"
)

// Solver is one rung of the selection chain: it produces a global
// assignment for a built problem. Implementations must honor ctx
// cancellation. The built-in methods are exposed through MethodSolver;
// tests and embedders can supply their own rungs via Fallback.Chain.
type Solver interface {
	// Name identifies the solver in Result.SolverUsed and error messages.
	Name() string
	// Solve computes an assignment. A non-nil error (or a panic, which the
	// runner converts into a *PanicError) makes the chain degrade to the
	// next rung.
	Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error)
}

// SolveOutcome is what one solver rung produced.
type SolveOutcome struct {
	// Assignment is the selection (-1 entries are unrouted objects).
	Assignment route.Assignment
	// TimedOut reports that a time limit interrupted the proof of
	// optimality; the assignment is still usable.
	TimedOut bool
}

// Fallback configures graceful degradation of the selection solve.
type Fallback struct {
	// Enabled turns the chain on: when the requested method panics, times
	// out without routing anything, exceeds the model-size guard, or
	// reports infeasibility, the run degrades along ILP -> Hierarchical ->
	// PrimalDual instead of failing. Context cancellation is never
	// swallowed — it aborts the whole chain.
	Enabled bool
	// Chain overrides the default degradation sequence derived from
	// Options.Method. Mainly a seam for tests and custom solvers.
	Chain []Solver
}

// Attempt records one failed rung of the fallback chain.
type Attempt struct {
	// Solver is the rung's name.
	Solver string
	// Err is the failure's text.
	Err string
}

// ExhaustedError reports that every rung of the selection chain failed: no
// solver — requested method or fallback — produced an assignment. Attempts
// lists each rung's failure in order; Unwrap exposes the final rung's
// error so errors.Is/As still reach the root cause.
type ExhaustedError struct {
	// Attempts records every failed rung, in chain order.
	Attempts []Attempt
	cause    error
}

// Error lists every failed rung so callers see the whole degradation
// history, not just the last failure.
func (e *ExhaustedError) Error() string {
	parts := make([]string, len(e.Attempts))
	for i, a := range e.Attempts {
		parts[i] = a.Solver + ": " + a.Err
	}
	return fmt.Sprintf("core: all %d solver rungs failed: %s", len(e.Attempts), strings.Join(parts, "; "))
}

// Unwrap exposes the final rung's error.
func (e *ExhaustedError) Unwrap() error { return e.cause }

// PanicError is a solver panic converted into an error by the chain
// runner, preserving the offending solver's name and stack.
type PanicError struct {
	// Solver names the rung that panicked.
	Solver string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error formats the panic with its origin attached.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: solver %s panicked: %v", e.Solver, e.Value)
}

// MethodSolver returns the built-in solver implementing a method.
func MethodSolver(m Method) Solver {
	switch m {
	case ILP:
		return ilpSolver{}
	case Hierarchical:
		return hierSolver{}
	default:
		return pdSolver{}
	}
}

// chain assembles the rung sequence for a run: the requested method,
// followed — when fallback is enabled — by the strictly-faster methods
// below it. An explicit Fallback.Chain wins outright.
func (opt Options) chain() []Solver {
	if opt.Fallback.Enabled && opt.Fallback.Chain != nil {
		return opt.Fallback.Chain
	}
	rungs := []Solver{MethodSolver(opt.Method)}
	if opt.Fallback.Enabled {
		switch opt.Method {
		case ILP:
			rungs = append(rungs, MethodSolver(Hierarchical), MethodSolver(PrimalDual))
		case Hierarchical:
			rungs = append(rungs, MethodSolver(PrimalDual))
		}
	}
	return rungs
}

// runRung executes one solver with panic isolation: a panic inside the
// rung is recovered and returned as a *PanicError instead of unwinding
// through core.Run.
func runRung(ctx context.Context, s Solver, p *route.Problem, opt Options) (out SolveOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Solver: s.Name(), Value: r, Stack: debug.Stack()}
		}
	}()
	return s.Solve(ctx, p, opt)
}

// pdSolver wraps the primal-dual flow (Algorithm 2).
type pdSolver struct{}

func (pdSolver) Name() string { return PrimalDual.String() }

func (pdSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	r, err := pd.SolveCtx(ctx, p)
	if errors.Is(err, context.DeadlineExceeded) {
		// A deadline is a time budget, not a failure: the committed part of
		// the assignment is legal, so report it as a timed-out outcome.
		return SolveOutcome{Assignment: r.Assignment, TimedOut: true}, nil
	}
	if err != nil {
		return SolveOutcome{}, err
	}
	return SolveOutcome{Assignment: r.Assignment}, nil
}

// ilpSolver wraps the exact flow. Options.ILPTimeLimit becomes a context
// deadline for the rung, giving the whole solve path one deadline
// mechanism.
type ilpSolver struct{}

func (ilpSolver) Name() string { return ILP.String() }

func (ilpSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	if opt.ILPTimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.ILPTimeLimit)
		defer cancel()
	}
	eopt := exact.Options{MaxVars: opt.ILPMaxVars}
	if opt.ILPWarmStart {
		warm, err := pd.SolveCtx(ctx, p)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return SolveOutcome{}, err
		}
		// On deadline the partial warm assignment still serves as an
		// incumbent; the exact solve below reports the timeout.
		eopt.WarmStart = &warm.Assignment
	}
	r, err := exact.SolveCtx(ctx, p, eopt)
	if err != nil {
		return SolveOutcome{}, err
	}
	return SolveOutcome{Assignment: r.Assignment, TimedOut: r.TimedOut}, nil
}

// hierSolver wraps the divide-and-conquer exact flow.
type hierSolver struct{}

func (hierSolver) Name() string { return Hierarchical.String() }

func (hierSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	r, err := hier.SolveCtx(ctx, p, hier.Options{Tiles: opt.HierTiles, TimePerTile: opt.HierTimePerTile, Workers: opt.HierWorkers})
	if errors.Is(err, context.DeadlineExceeded) {
		return SolveOutcome{Assignment: r.Assignment, TimedOut: true}, nil
	}
	if err != nil {
		return SolveOutcome{}, err
	}
	return SolveOutcome{Assignment: r.Assignment, TimedOut: r.TilesTimedOut > 0}, nil
}
