package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/benchgen"
	"repro/internal/route"
)

// panicSolver is an injected rung that always panics mid-solve.
type panicSolver struct{}

func (panicSolver) Name() string { return "panic-stub" }

func (panicSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	panic("injected solver failure")
}

// timeoutSolver is an injected rung that times out having routed nothing.
type timeoutSolver struct{}

func (timeoutSolver) Name() string { return "timeout-stub" }

func (timeoutSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	return SolveOutcome{Assignment: p.NewAssignment(), TimedOut: true}, nil
}

// TestFallbackChainDegradesToPrimalDual is the headline resilience test: a
// panicking rung and a timing-out rung both degrade, the primal-dual rung
// produces the result, and the independent auditor finds it legal.
func TestFallbackChainDegradesToPrimalDual(t *testing.T) {
	p := testProblem(t)
	res, err := RunProblem(p, Options{
		Method: ILP,
		Fallback: Fallback{
			Enabled: true,
			Chain:   []Solver{panicSolver{}, timeoutSolver{}, MethodSolver(PrimalDual)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("Degraded = false after two failed rungs")
	}
	if res.SolverUsed != PrimalDual.String() {
		t.Errorf("SolverUsed = %q, want %q", res.SolverUsed, PrimalDual.String())
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("Attempts = %v, want 2 entries", res.Attempts)
	}
	if res.Attempts[0].Solver != "panic-stub" || !strings.Contains(res.Attempts[0].Err, "panicked") {
		t.Errorf("first attempt = %+v, want recorded panic", res.Attempts[0])
	}
	if res.Attempts[1].Solver != "timeout-stub" || !strings.Contains(res.Attempts[1].Err, "timed out") {
		t.Errorf("second attempt = %+v, want recorded timeout", res.Attempts[1])
	}
	if res.Metrics.RoutedGroups == 0 {
		t.Error("fallback result routed nothing")
	}
	rep := audit.Check(p.Design, p.Grid, res.Routing)
	if !rep.OK() {
		t.Errorf("fallback routing fails the legality audit: %s", rep.Summary())
	}
}

// TestFallbackDisabledSurfacesPanic proves panics are isolated into typed
// errors — not swallowed — when no fallback is configured.
func TestFallbackDisabledSurfacesPanic(t *testing.T) {
	p := testProblem(t)
	_, err := RunProblem(p, Options{
		Method:   PrimalDual,
		Fallback: Fallback{Enabled: true, Chain: []Solver{panicSolver{}}},
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Solver != "panic-stub" || len(pe.Stack) == 0 {
		t.Errorf("PanicError missing origin: solver %q, %d stack bytes", pe.Solver, len(pe.Stack))
	}
}

// TestFallbackDefaultChain exercises the built-in degradation order: an
// over-tight ILP model-size guard fails the exact rung, and the
// hierarchical rung takes over.
func TestFallbackDefaultChain(t *testing.T) {
	p := testProblem(t)
	res, err := RunProblem(p, Options{
		Method:     ILP,
		ILPMaxVars: 1, // every model exceeds this
		Fallback:   Fallback{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("Degraded = false after oversized ILP model")
	}
	if res.SolverUsed != Hierarchical.String() {
		t.Errorf("SolverUsed = %q, want %q", res.SolverUsed, Hierarchical.String())
	}
	if len(res.Attempts) != 1 || res.Attempts[0].Solver != ILP.String() {
		t.Errorf("Attempts = %+v, want one failed ILP rung", res.Attempts)
	}
}

// TestAuditStrictMode checks both audit outcomes: a real run passes, and a
// sabotaged grid fails with the report attached to the returned result.
func TestAuditStrictMode(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	res, err := Run(d, Options{
		Method: PrimalDual, PostOpt: true, Clustering: true, Refinement: true,
		Audit: AuditStrict,
	})
	if err != nil {
		t.Fatalf("strict audit rejected a clean flow: %v", err)
	}
	if res.Audit == nil || !res.Audit.OK() {
		t.Fatal("audit report missing or dirty on a clean flow")
	}

	// Sabotage: zero out a used edge's capacity after solving, then re-run
	// the audit path by auditing the stale routing against the new grid.
	rep := audit.Check(d, res.Problem.Grid, res.Routing)
	if !rep.OK() {
		t.Fatalf("pre-sabotage audit dirty: %s", rep.Summary())
	}
	sabotaged := false
	for l := range res.Problem.Grid.Layers {
		for idx := 0; idx < res.Problem.Grid.EdgeCount(l) && !sabotaged; idx++ {
			if res.Usage.Use(l, idx) > 0 {
				x, y := res.Problem.Grid.EdgeCell(l, idx)
				res.Problem.Grid.SetCap(l, x, y, 0)
				sabotaged = true
			}
		}
	}
	if !sabotaged {
		t.Skip("no used edge to sabotage")
	}
	rep = audit.Check(d, res.Problem.Grid, res.Routing)
	if rep.Count(audit.OverCapacity) == 0 {
		t.Error("sabotaged capacity not detected")
	}
}

// TestRunCtxCanceledBeforeSolve returns context.Canceled without touching
// any solver.
func TestRunCtxCanceledBeforeSolve(t *testing.T) {
	p := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunProblemCtx(ctx, p, Options{Method: PrimalDual}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidSolve cancels an exact solve on an Industry benchmark
// whose monolithic ILP runs for tens of seconds: the run must return
// promptly with context.Canceled, leak no goroutines, and not be rescued
// by the fallback chain (cancellation is the caller giving up).
func TestRunCtxCancelMidSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second benchmark build")
	}
	d := benchgen.Scale(benchgen.Industry(1), 0.2).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunProblemCtx(ctx, p, Options{Method: ILP, Fallback: Fallback{Enabled: true}})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not return within 5s of cancellation")
	}

	// The solve path is synchronous; cancellation must leave no goroutines
	// behind. Poll briefly to let the test goroutine itself exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunCtxDeadlinePropagates drives the whole flow off one context
// deadline with no per-stage time limits configured.
func TestRunCtxDeadlinePropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second benchmark build")
	}
	d := benchgen.Scale(benchgen.Industry(1), 0.2).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunProblemCtx(ctx, p, Options{Method: ILP})
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("deadline ignored: solve took %v", took)
	}
	// A context deadline behaves like a time limit: the exact leg reports
	// TimedOut (empty or best-found assignment) rather than an error.
	if err != nil {
		t.Fatalf("err = %v, want timed-out result", err)
	}
	if !res.TimedOut {
		t.Error("TimedOut = false under an expired context deadline")
	}
}

func TestAuditModeString(t *testing.T) {
	if AuditOff.String() != "off" || AuditWarn.String() != "warn" || AuditStrict.String() != "strict" {
		t.Error("audit mode names wrong")
	}
}
