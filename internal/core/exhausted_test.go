package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/route"
)

// TestExhaustedErrorFormatting pins the error text: the message must carry
// the rung count and every rung's name and failure, in chain order.
func TestExhaustedErrorFormatting(t *testing.T) {
	ex := &ExhaustedError{
		Attempts: []Attempt{
			{Solver: "ILP", Err: "model too large"},
			{Solver: "Hierarchical", Err: "tile 3 infeasible"},
			{Solver: "PrimalDual", Err: "context deadline exceeded"},
		},
		cause: context.DeadlineExceeded,
	}
	msg := ex.Error()
	if !strings.HasPrefix(msg, "core: all 3 solver rungs failed: ") {
		t.Errorf("message prefix wrong: %q", msg)
	}
	for _, part := range []string{
		"ILP: model too large",
		"Hierarchical: tile 3 infeasible",
		"PrimalDual: context deadline exceeded",
	} {
		if !strings.Contains(msg, part) {
			t.Errorf("message %q missing %q", msg, part)
		}
	}
	// Chain order is preserved in the text.
	if strings.Index(msg, "ILP:") > strings.Index(msg, "Hierarchical:") {
		t.Errorf("rungs out of order: %q", msg)
	}
}

// TestExhaustedErrorUnwrapping: Unwrap exposes the final rung's error, so
// errors.Is and errors.As reach the root cause through arbitrary extra
// wrapping layers.
func TestExhaustedErrorUnwrapping(t *testing.T) {
	pe := &PanicError{Solver: "pd", Value: "boom", Stack: []byte("stack")}
	ex := &ExhaustedError{
		Attempts: []Attempt{{Solver: "pd", Err: pe.Error()}},
		cause:    pe,
	}
	// Directly.
	var gotPE *PanicError
	if !errors.As(ex, &gotPE) || gotPE != pe {
		t.Fatalf("errors.As did not surface the cause: %v", ex)
	}
	// Through additional fmt wrapping, as the server layer applies.
	wrapped := fmt.Errorf("job attempt 2: %w", ex)
	var gotEX *ExhaustedError
	if !errors.As(wrapped, &gotEX) || gotEX != ex {
		t.Error("errors.As lost *ExhaustedError through fmt wrapping")
	}
	if !errors.As(wrapped, &gotPE) {
		t.Error("errors.As lost the root *PanicError through fmt wrapping")
	}

	// Sentinel causes survive the same way.
	exDeadline := &ExhaustedError{
		Attempts: []Attempt{{Solver: "pd", Err: "slow"}},
		cause:    fmt.Errorf("pd: %w", context.DeadlineExceeded),
	}
	if !errors.Is(exDeadline, context.DeadlineExceeded) {
		t.Error("errors.Is lost context.DeadlineExceeded through ExhaustedError")
	}
}

// failSolver is an injected rung failing with a fixed error.
type failSolver struct {
	name string
	err  error
}

func (s failSolver) Name() string { return s.name }
func (s failSolver) Solve(ctx context.Context, p *route.Problem, opt Options) (SolveOutcome, error) {
	return SolveOutcome{}, s.err
}

// TestExhaustedErrorThroughFallbackChain produces the error through the
// real chain runner — not hand-construction — and asserts the whole
// degradation history and the root cause both survive.
func TestExhaustedErrorThroughFallbackChain(t *testing.T) {
	p := testProblem(t)
	rootCause := errors.New("capacity model infeasible")
	_, err := RunProblem(p, Options{
		Method: PrimalDual,
		Fallback: Fallback{
			Enabled: true,
			Chain: []Solver{
				panicSolver{},
				failSolver{name: "flaky-stub", err: fmt.Errorf("rung 2: %w", rootCause)},
			},
		},
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if len(ex.Attempts) != 2 || ex.Attempts[0].Solver != "panic-stub" || ex.Attempts[1].Solver != "flaky-stub" {
		t.Errorf("Attempts = %+v", ex.Attempts)
	}
	// The cause is the LAST rung's error: the panic from rung 1 is in the
	// history text, not the unwrap chain.
	if !errors.Is(err, rootCause) {
		t.Error("errors.Is lost the final rung's root cause")
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Error("first rung's panic leaked into the unwrap chain")
	}
	if !strings.Contains(err.Error(), "panic-stub") || !strings.Contains(err.Error(), "flaky-stub") {
		t.Errorf("message does not list both rungs: %q", err)
	}
}
