package core

import (
	"context"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/obs"
)

// TestRunCtxRootSpanNesting checks the traced flow: RunCtx opens a single
// root "run" span, every stage span nests under it, and a full primal-dual
// run leaves at least one convergence sample for the solver it used.
func TestRunCtxRootSpanNesting(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, err := RunCtx(ctx, d, Options{Method: PrimalDual}); err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	roots := 0
	for _, s := range rep.Spans {
		switch {
		case s.Name == "run":
			roots++
			if s.Parent != "" {
				t.Errorf("root span has parent %q", s.Parent)
			}
		case s.Parent != "run":
			t.Errorf("stage %q has parent %q, want run", s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("got %d root spans, want 1", roots)
	}
	if len(rep.Series["pd"]) == 0 {
		t.Error("no pd convergence samples from a full run")
	}
}

// TestRunProblemCtxReusesOpenSpan pins that the prebuilt-problem entry point
// does not open a second root when the caller already did (RunCtx's own
// call path).
func TestRunProblemCtxReusesOpenSpan(t *testing.T) {
	p := testProblem(t)
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	sp := rec.StartSpan("outer")
	ctx = obs.WithSpan(ctx, sp)
	if _, err := RunProblemCtx(ctx, p, Options{Method: PrimalDual}); err != nil {
		t.Fatal(err)
	}
	sp.End()
	rep := rec.Report()
	for _, s := range rep.Spans {
		if s.Name == "run" {
			t.Errorf("RunProblemCtx opened a root span under an existing one: %+v", rep.Spans)
		}
		if s.Name != "outer" && s.Parent != "outer" {
			t.Errorf("stage %q parent = %q, want outer", s.Name, s.Parent)
		}
	}
}
