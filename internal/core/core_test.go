package core

import (
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/route"
)

func testProblem(t *testing.T) *route.Problem {
	t.Helper()
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPrimalDual(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	res, err := Run(d, Options{Method: PrimalDual})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routing == nil || res.Usage == nil {
		t.Fatal("missing routing state")
	}
	if res.Usage.Overflow() != 0 {
		t.Errorf("overflow = %d", res.Usage.Overflow())
	}
	if res.Metrics.Bench != d.Name {
		t.Errorf("metrics bench = %s", res.Metrics.Bench)
	}
	if res.Metrics.Runtime <= 0 {
		t.Error("runtime not captured")
	}
}

func TestRunILPWithWarmStart(t *testing.T) {
	p := testProblem(t)
	res, err := RunProblem(p, Options{
		Method:       ILP,
		ILPTimeLimit: 10 * time.Second,
		ILPWarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pdRes, err := RunProblem(p, Options{Method: PrimalDual})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && res.Metrics.RoutedGroups < pdRes.Metrics.RoutedGroups {
		t.Errorf("optimal ILP routed %d < PD %d groups", res.Metrics.RoutedGroups, pdRes.Metrics.RoutedGroups)
	}
}

func TestRunPostOptPipeline(t *testing.T) {
	p := testProblem(t)
	plain, err := RunProblem(p, Options{Method: PrimalDual})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunProblem(p, Options{
		Method: PrimalDual, PostOpt: true, Clustering: true, Refinement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Metrics.RoutedGroups < plain.Metrics.RoutedGroups {
		t.Errorf("post-opt lost groups: %d -> %d", plain.Metrics.RoutedGroups, full.Metrics.RoutedGroups)
	}
	if full.Metrics.VioDst > full.VioBefore {
		t.Errorf("refinement increased violations: %d -> %d", full.VioBefore, full.Metrics.VioDst)
	}
	if full.Usage.Overflow() != 0 {
		t.Error("post-opt overflowed")
	}
}

func TestRunRejectsUnknownMethod(t *testing.T) {
	p := testProblem(t)
	if _, err := RunProblem(p, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunRejectsInvalidDesign(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	d.Grid.W = 1
	if _, err := Run(d, Options{}); err == nil {
		t.Fatal("invalid design accepted")
	}
}

func TestMethodString(t *testing.T) {
	if PrimalDual.String() != "Primal-Dual" || ILP.String() != "ILP" {
		t.Error("method names wrong")
	}
}

func TestVioBeforeWithoutPostOpt(t *testing.T) {
	p := testProblem(t)
	res, err := RunProblem(p, Options{Method: PrimalDual})
	if err != nil {
		t.Fatal(err)
	}
	if res.VioBefore != res.Metrics.VioDst {
		t.Errorf("without post-opt VioBefore %d != VioDst %d", res.VioBefore, res.Metrics.VioDst)
	}
}
