package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchgen"
)

// TestCaptureRoundTrip: Record → ReadCapture → ProgramFromCapture
// preserves order, spacing, and bodies.
func TestCaptureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCapture(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic capture clock: 250ms apart.
	now := time.UnixMilli(1_000_000)
	c.now = func() time.Time { now = now.Add(250 * time.Millisecond); return now }

	d := benchgen.SingleBitGroups(1, 4, 32, 32)
	body, _ := json.Marshal(d)
	paths := []string{"/route", "/jobs", "/route"}
	for i, p := range paths {
		q := ""
		if i == 2 {
			q = "cache=off"
		}
		if err := c.Record(p, q, body); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	reqs, skipped, err := ReadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(reqs) != 3 {
		t.Fatalf("ReadCapture: %d reqs, %d skipped", len(reqs), skipped)
	}
	for i, cr := range reqs {
		if cr.Path != paths[i] {
			t.Fatalf("req %d path %q, want %q", i, cr.Path, paths[i])
		}
	}
	if reqs[2].Query != "cache=off" {
		t.Fatalf("req 2 query %q", reqs[2].Query)
	}

	prog, dropped, err := ProgramFromCapture("replay", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(prog.Requests) != 3 {
		t.Fatalf("ProgramFromCapture: %d reqs, %d dropped", len(prog.Requests), dropped)
	}
	if prog.Requests[0].At != 0 {
		t.Fatalf("first replay offset %v, want 0", prog.Requests[0].At)
	}
	if got := prog.Requests[2].At; got != 500*time.Millisecond {
		t.Fatalf("third replay offset %v, want 500ms", got)
	}
	if err := prog.Requests[0].Design.Validate(); err != nil {
		t.Fatalf("replayed design invalid: %v", err)
	}
}

// TestCaptureRing: tiny segments force rotation; the ring keeps only the
// newest `keep` segments, and a corrupt tail line is skipped, not fatal.
func TestCaptureRing(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCapture(dir, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := benchgen.SingleBitGroups(2, 3, 24, 24)
	body, _ := json.Marshal(d)
	for i := 0; i < 20; i++ {
		if err := c.Record("/route", fmt.Sprintf("i=%d", i), body); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := captureSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("ring kept %d segments, want <= 2", len(segs))
	}
	reqs, _, err := ReadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 || len(reqs) >= 20 {
		t.Fatalf("ring holds %d requests, want a strict recent subset", len(reqs))
	}
	// Newest request must survive pruning.
	if got := reqs[len(reqs)-1].Query; got != "i=19" {
		t.Fatalf("newest surviving request is %q, want i=19", got)
	}

	// Corrupt tail: append garbage to the newest segment.
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{half a rec")
	f.Close()
	reqs2, skipped, err := ReadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(reqs2) != len(reqs) {
		t.Fatalf("corrupt tail: %d reqs %d skipped, want %d reqs 1 skipped", len(reqs2), skipped, len(reqs))
	}

	// Reopening resumes numbering past existing segments.
	c2, err := OpenCapture(dir, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Record("/route", "resumed", body); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	segs2, _ := captureSegments(dir)
	if filepath.Base(segs2[len(segs2)-1]) <= filepath.Base(segs[len(segs)-1]) {
		t.Fatalf("reopen did not advance segment numbering: %v -> %v", segs, segs2)
	}
}
