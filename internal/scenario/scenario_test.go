package scenario

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/route"
)

// TestGenerateDeterministic: the reproducibility contract — same scenario
// name + config digests identically, different seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names() {
		cfg := Config{Seed: 42, Requests: 30}
		a, err := Generate(name, cfg)
		if err != nil {
			t.Fatalf("Generate(%q): %v", name, err)
		}
		b, _ := Generate(name, cfg)
		if a.Digest() != b.Digest() {
			t.Errorf("scenario %q: same seed produced different digests", name)
		}
		c, _ := Generate(name, Config{Seed: 43, Requests: 30})
		if a.Digest() == c.Digest() {
			t.Errorf("scenario %q: different seeds produced identical digests", name)
		}
		if len(a.Requests) != 30 {
			t.Errorf("scenario %q: got %d requests, want 30", name, len(a.Requests))
		}
	}
}

// TestGenerateUnknown: unknown scenario names error and list what exists.
func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", Config{Seed: 1}); err == nil {
		t.Fatal("Generate(nope) succeeded")
	}
}

// TestProgramsWellFormed: every generated request carries a valid design,
// a known path, and non-decreasing arrival offsets. A scenario that fires
// invalid designs measures the validator, not the router.
func TestProgramsWellFormed(t *testing.T) {
	for _, name := range Names() {
		p, err := Generate(name, Config{Seed: 7, Requests: 40})
		if err != nil {
			t.Fatalf("Generate(%q): %v", name, err)
		}
		var prev time.Duration
		for i, req := range p.Requests {
			if req.Path != "/route" && req.Path != "/jobs" {
				t.Fatalf("%s req %d: unexpected path %q", name, i, req.Path)
			}
			if req.At < prev {
				t.Fatalf("%s req %d: arrivals not ordered (%v < %v)", name, i, req.At, prev)
			}
			prev = req.At
			if err := req.Design.Validate(); err != nil {
				t.Fatalf("%s req %d (%s): invalid design: %v", name, i, req.Design.Name, err)
			}
		}
		if p.FaultSpec != "" {
			if _, err := faultinject.ParseSpec(p.FaultSpec); err != nil {
				t.Fatalf("%s: fault spec %q does not parse: %v", name, p.FaultSpec, err)
			}
		}
	}
}

// TestChurnDeltaCompatible: consecutive churn designs must either be the
// same design (an exact cache hit) or diff cleanly through
// route.DiffDesigns with a non-empty delta — that is the whole point of
// the churn stream: it exercises the incremental path, not the cold path.
func TestChurnDeltaCompatible(t *testing.T) {
	p, err := Generate("churn", Config{Seed: 11, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	mutations := 0
	for i := 1; i < len(p.Requests); i++ {
		oldD, newD := p.Requests[i-1].Design, p.Requests[i].Design
		if oldD == newD {
			continue // verbatim repeat
		}
		mutations++
		delta, ok := route.DiffDesigns(oldD, newD)
		if !ok {
			t.Fatalf("churn step %d: designs not delta-compatible", i)
		}
		if len(delta.DirtyRects) == 0 && len(delta.ChangedGroups) == 0 {
			t.Fatalf("churn step %d: mutation produced an empty delta", i)
		}
	}
	if mutations == 0 {
		t.Fatal("churn scenario produced no mutations")
	}
}

// TestMutateStaysValid: a long mutation chain never produces an invalid
// design or changes grid shape / group count.
func TestMutateStaysValid(t *testing.T) {
	p, _ := Generate("churn", Config{Seed: 3, Requests: 2})
	d := p.Requests[0].Design
	r := rand.New(rand.NewSource(99))
	for step := 0; step < 60; step++ {
		next, label := Mutate(r, d)
		if label == "" {
			t.Fatalf("step %d: empty edit label", step)
		}
		if err := next.Validate(); err != nil {
			t.Fatalf("step %d (%s): invalid after mutation: %v", step, label, err)
		}
		if len(next.Groups) != len(d.Groups) {
			t.Fatalf("step %d (%s): group count changed", step, label)
		}
		if next.Grid.W != d.Grid.W || next.Grid.H != d.Grid.H ||
			next.Grid.NumLayers != d.Grid.NumLayers || next.Grid.EdgeCap != d.Grid.EdgeCap {
			t.Fatalf("step %d (%s): grid shape changed", step, label)
		}
		d = next
	}
}

// TestCloneDesignAliasing: mutating a clone must never write through to
// the original.
func TestCloneDesignAliasing(t *testing.T) {
	p, _ := Generate("churn", Config{Seed: 5, Requests: 1})
	d := p.Requests[0].Design
	before := d.Groups[0].Bits[0].Pins[0].Loc
	nBlk := len(d.Grid.Blockages)
	c := CloneDesign(d)
	c.Groups[0].Bits[0].Pins[0].Loc = c.Groups[0].Bits[0].Pins[0].Loc.Add(geom.Pt(1, 1))
	c.Grid.Blockages = append(c.Grid.Blockages, d.Grid.Blockages...)
	if d.Groups[0].Bits[0].Pins[0].Loc != before {
		t.Fatal("clone aliases pin storage")
	}
	if len(d.Grid.Blockages) != nBlk {
		t.Fatal("clone aliases blockage storage")
	}
}

// TestArrivals: both processes produce ordered offsets at roughly the
// requested rate.
func TestArrivals(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	po := PoissonArrivals(r, 400, 100)
	for i := 1; i < len(po); i++ {
		if po[i] < po[i-1] {
			t.Fatal("poisson arrivals not ordered")
		}
	}
	// 400 arrivals at 100/s: expect ~4s total, allow wide slack.
	if total := po[len(po)-1]; total < 2*time.Second || total > 8*time.Second {
		t.Fatalf("poisson span %v, want ~4s", total)
	}
	sq := SquareWaveArrivals(r, 200, 10, 1000, 2*time.Second)
	for i := 1; i < len(sq); i++ {
		if sq[i] < sq[i-1] {
			t.Fatal("square-wave arrivals not ordered")
		}
	}
}

// TestCheckInvariants: each invariant trips on exactly its own violation.
func TestCheckInvariants(t *testing.T) {
	ok2xx := Observation{Status: 200, RetryAfter: -1}
	find := func(rs []InvariantResult, name string) InvariantResult {
		for _, r := range rs {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("invariant %q missing", name)
		return InvariantResult{}
	}

	rs := CheckInvariants([]Observation{ok2xx, {Status: 429, RetryAfter: 2}}, CheckConfig{})
	if !AllOK(rs) {
		t.Fatalf("clean run failed invariants: %+v", rs)
	}

	rs = CheckInvariants([]Observation{{TransportErr: "connection refused"}}, CheckConfig{})
	if find(rs, "transport-clean").OK {
		t.Error("transport-clean passed with a transport error")
	}

	rs = CheckInvariants([]Observation{{Status: 429, RetryAfter: -1}}, CheckConfig{})
	if find(rs, "shed-retry-after").OK {
		t.Error("shed-retry-after passed with missing header")
	}

	rs = CheckInvariants([]Observation{{Status: 503, ErrMsg: "server is draining", RetryAfter: -1}}, CheckConfig{})
	if find(rs, "drain-retry-after").OK {
		t.Error("drain-retry-after passed with missing header")
	}

	many := []Observation{ok2xx}
	for i := 0; i < 9; i++ {
		many = append(many, Observation{Status: 429, RetryAfter: 1})
	}
	rs = CheckInvariants(many, CheckConfig{MaxShedFrac: 0.5})
	if find(rs, "shed-budget").OK {
		t.Error("shed-budget passed at 90% shed with 50% budget")
	}

	rs = CheckInvariants([]Observation{{Status: 500, ErrMsg: "boom"}}, CheckConfig{FaultsArmed: true})
	if find(rs, "no-uninjected-5xx").OK {
		t.Error("no-uninjected-5xx passed on an unattributed 500")
	}
	rs = CheckInvariants([]Observation{{Status: 500, ErrMsg: "core: all 1 solver rungs failed: pd: faultinject: pd.solve: injected chaos"}}, CheckConfig{FaultsArmed: true})
	if !find(rs, "no-uninjected-5xx").OK {
		t.Error("no-uninjected-5xx tripped on an injected 500")
	}
	rs = CheckInvariants([]Observation{{Status: 500, ErrMsg: "faultinject: x"}}, CheckConfig{FaultsArmed: false})
	if find(rs, "no-uninjected-5xx").OK {
		t.Error("no-uninjected-5xx passed an injected-looking 500 with no faults armed")
	}

	bad := false
	rs = CheckInvariants([]Observation{{Status: 200, AuditOK: &bad, Cache: "incremental"}}, CheckConfig{})
	if find(rs, "audit-legal").OK {
		t.Error("audit-legal passed a dirty audit")
	}

	rs = CheckInvariants([]Observation{{Status: 202, JobID: "j1", JobLost: true}}, CheckConfig{})
	if find(rs, "jobs-complete").OK {
		t.Error("jobs-complete passed a lost job")
	}
	rs = CheckInvariants([]Observation{{Status: 202, JobID: "j1", JobState: "FAILED", JobError: "real bug"}}, CheckConfig{FaultsArmed: true})
	if find(rs, "jobs-complete").OK {
		t.Error("jobs-complete passed an uninjected job failure")
	}
	rs = CheckInvariants([]Observation{{Status: 202, JobID: "j1", JobState: "FAILED", JobError: "faultinject: jobs.run: injected chaos"}}, CheckConfig{FaultsArmed: true})
	if !find(rs, "jobs-complete").OK {
		t.Error("jobs-complete tripped on an injected job failure")
	}
}

// TestSummarize: the report numbers add up.
func TestSummarize(t *testing.T) {
	obs := []Observation{
		{Status: 200, Latency: 10 * time.Millisecond, Cache: "cold"},
		{Status: 200, Latency: 20 * time.Millisecond, Cache: "hit"},
		{Status: 429},
		{Status: 202, JobID: "j1", JobState: "SUCCEEDED", Latency: 5 * time.Millisecond},
		{TransportErr: "refused"},
	}
	s := Summarize(obs)
	if s.Requests != 5 || s.ByStatus["200"] != 2 || s.ByStatus["429"] != 1 || s.ByStatus["transport-error"] != 1 {
		t.Fatalf("bad status counts: %+v", s)
	}
	if s.ShedFrac != 0.2 {
		t.Fatalf("shed frac = %v, want 0.2", s.ShedFrac)
	}
	if s.JobsAccepted != 1 || s.JobsSucceeded != 1 {
		t.Fatalf("bad job counts: %+v", s)
	}
	if s.P50us == 0 || s.P99us < s.P50us {
		t.Fatalf("bad percentiles: %+v", s)
	}
	if s.ByCache["cold"] != 1 || s.ByCache["hit"] != 1 {
		t.Fatalf("bad cache counts: %+v", s)
	}
}
