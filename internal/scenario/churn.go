package scenario

// ECO churn: the scenario engine's model of late-stage design edits. A
// churn stream starts from a base design and applies one small edit per
// step — a group nudged to a new spot, a blockage dropped in, a blockage
// lifted — exactly the edits route.DiffDesigns classifies into dirty
// rects and changed groups. Every mutation preserves the grid shape and
// the group count, so consecutive designs are always delta-compatible
// and the incremental re-route path (not the cold path) is what gets
// exercised.

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/signal"
)

// CloneDesign deep-copies a design so a mutation never aliases the
// original's pin or blockage slices.
func CloneDesign(d *signal.Design) *signal.Design {
	nd := &signal.Design{Name: d.Name, Grid: d.Grid}
	nd.Grid.Blockages = append([]signal.Blockage(nil), d.Grid.Blockages...)
	nd.Groups = make([]signal.Group, len(d.Groups))
	for i, g := range d.Groups {
		ng := signal.Group{Name: g.Name, Bits: make([]signal.Bit, len(g.Bits))}
		for j, b := range g.Bits {
			nb := b
			nb.Pins = append([]signal.Pin(nil), b.Pins...)
			ng.Bits[j] = nb
		}
		nd.Groups[i] = ng
	}
	return nd
}

// Mutate returns a copy of d with one random ECO edit applied and a short
// label naming the edit ("mv3", "addblk", "rmblk"). The copy is always
// delta-compatible with d (same grid shape, same group count) and always
// passes Validate: group moves translate every pin of the group by the
// same in-bounds offset, which preserves relative pin geometry, so no
// duplicate-pin or out-of-bounds violations can appear.
func Mutate(r *rand.Rand, d *signal.Design) (*signal.Design, string) {
	nd := CloneDesign(d)
	switch r.Intn(3) {
	case 0:
		if label, ok := moveGroup(r, nd); ok {
			return nd, label
		}
		return nd, addBlockage(r, nd)
	case 1:
		return nd, addBlockage(r, nd)
	default:
		if len(nd.Grid.Blockages) > 0 {
			i := r.Intn(len(nd.Grid.Blockages))
			nd.Grid.Blockages = append(nd.Grid.Blockages[:i], nd.Grid.Blockages[i+1:]...)
			return nd, "rmblk"
		}
		return nd, addBlockage(r, nd)
	}
}

// moveGroup translates one group by a small random offset chosen so every
// pin stays in bounds. Reports false if no group in the design can move
// (each picked group was already pinned against all four walls).
func moveGroup(r *rand.Rand, d *signal.Design) (string, bool) {
	if len(d.Groups) == 0 {
		return "", false
	}
	for try := 0; try < len(d.Groups); try++ {
		gi := r.Intn(len(d.Groups))
		g := &d.Groups[gi]
		lo := geom.Pt(d.Grid.W, d.Grid.H)
		hi := geom.Pt(0, 0)
		for _, b := range g.Bits {
			for _, p := range b.Pins {
				lo = geom.Pt(min(lo.X, p.Loc.X), min(lo.Y, p.Loc.Y))
				hi = geom.Pt(max(hi.X, p.Loc.X), max(hi.Y, p.Loc.Y))
			}
		}
		// Legal translation ranges keep the bounding box on the grid; cap
		// the magnitude so a churn step stays a local edit.
		dxLo, dxHi := max(-3, -lo.X), min(3, d.Grid.W-1-hi.X)
		dyLo, dyHi := max(-3, -lo.Y), min(3, d.Grid.H-1-hi.Y)
		if dxHi < dxLo || dyHi < dyLo {
			continue
		}
		dx := dxLo + r.Intn(dxHi-dxLo+1)
		dy := dyLo + r.Intn(dyHi-dyLo+1)
		if dx == 0 && dy == 0 {
			continue
		}
		off := geom.Pt(dx, dy)
		for bi := range g.Bits {
			for pi := range g.Bits[bi].Pins {
				g.Bits[bi].Pins[pi].Loc = g.Bits[bi].Pins[pi].Loc.Add(off)
			}
		}
		return fmt.Sprintf("mv%d", gi), true
	}
	return "", false
}

// addBlockage drops a random rectangular blockage on a random layer.
// Rects can be as small as a single cell (a zero-area dirty rect for the
// differ) and are clipped to the grid by construction.
func addBlockage(r *rand.Rand, d *signal.Design) string {
	w := 1 + r.Intn(max(1, d.Grid.W/6))
	h := 1 + r.Intn(max(1, d.Grid.H/6))
	x := r.Intn(max(1, d.Grid.W-w+1))
	y := r.Intn(max(1, d.Grid.H-h+1))
	d.Grid.Blockages = append(d.Grid.Blockages, signal.Blockage{
		Layer: r.Intn(d.Grid.NumLayers),
		Rect:  geom.Rect{Lo: geom.Pt(x, y), Hi: geom.Pt(x+w-1, y+h-1)},
	})
	return "addblk"
}
