package scenario

// Arrival processes. Scenarios are open-loop: request times are fixed up
// front from a seeded random source, not paced by responses, which is
// what lets a burst actually overrun the admission queue instead of
// politely waiting for it.

import (
	"math/rand"
	"time"
)

// PoissonArrivals returns n arrival offsets from a Poisson process with
// the given mean rate (requests/second): exponential inter-arrival gaps,
// strictly non-decreasing offsets.
func PoissonArrivals(r *rand.Rand, n int, ratePerSec float64) []time.Duration {
	out := make([]time.Duration, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += r.ExpFloat64() / ratePerSec
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// SquareWaveArrivals returns n arrival offsets from a Poisson process
// whose rate alternates between lowRate and highRate every half period —
// quiet valleys that let queues drain, then bursts that slam them. The
// wave starts in the low phase.
func SquareWaveArrivals(r *rand.Rand, n int, lowRate, highRate float64, period time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	half := period.Seconds() / 2
	t := 0.0
	for i := 0; i < n; i++ {
		rate := lowRate
		if int(t/half)%2 == 1 {
			rate = highRate
		}
		t += r.ExpFloat64() / rate
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}
