package scenario

// Record/replay. streakd -record-dir hands each accepted /route and
// /jobs body to a Capture, which keeps a bounded ring of JSONL segment
// files on disk. A captured window of live traffic becomes a Program via
// ProgramFromCapture and replays through cmd/streakload -replay — the
// bug that only happens under "whatever production was doing at 3am"
// becomes a seeded regression.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/signal"
)

// CapturedRequest is one recorded request, as stored on disk.
type CapturedRequest struct {
	// TimeMS is the capture wall-clock time in Unix milliseconds. Replay
	// only uses differences between consecutive entries, so clock epoch
	// does not matter.
	TimeMS int64 `json:"time_ms"`
	// Path is the request path ("/route" or "/jobs").
	Path string `json:"path"`
	// Query is the raw query string, "" for none.
	Query string `json:"query,omitempty"`
	// Body is the verbatim request body (a signal.Design JSON document).
	Body json.RawMessage `json:"body"`
}

// Capture is a ring of JSONL segment files holding recent request
// bodies. Safe for concurrent Record calls. Total disk use is bounded by
// keep segments of ~segBytes each.
type Capture struct {
	dir      string
	segBytes int64
	keep     int
	now      func() time.Time

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	written int64
	seq     int
}

// Capture file naming: capture-%06d.jsonl, monotonically increasing.
const capPrefix, capSuffix = "capture-", ".jsonl"

// OpenCapture opens (creating if needed) a capture ring in dir. Segments
// rotate at segBytes (default 4 MiB if <= 0) and at most keep segments
// are retained (default 8 if <= 0); older segments are deleted. Resumes
// numbering after any segments already present.
func OpenCapture(dir string, segBytes int64, keep int) (*Capture, error) {
	if segBytes <= 0 {
		segBytes = 4 << 20
	}
	if keep <= 0 {
		keep = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: capture dir: %w", err)
	}
	c := &Capture{dir: dir, segBytes: segBytes, keep: keep, now: time.Now}
	segs, err := captureSegments(dir)
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		fmt.Sscanf(filepath.Base(segs[n-1]), capPrefix+"%06d"+capSuffix, &c.seq)
		c.seq++
	}
	if err := c.rotateLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Record appends one request to the ring. Errors are returned, not
// fatal: the serving path treats capture as best-effort.
func (c *Capture) Record(path, query string, body []byte) error {
	line, err := json.Marshal(CapturedRequest{
		TimeMS: c.now().UnixMilli(),
		Path:   path,
		Query:  query,
		Body:   json.RawMessage(body),
	})
	if err != nil {
		return fmt.Errorf("scenario: capture encode: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil {
		return fmt.Errorf("scenario: capture closed")
	}
	if c.written > 0 && c.written+int64(len(line))+1 > c.segBytes {
		if err := c.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := c.w.Write(append(line, '\n'))
	c.written += int64(n)
	if err != nil {
		return fmt.Errorf("scenario: capture write: %w", err)
	}
	// Flush per record: a capture that loses its tail on crash is useless
	// for reproducing the crash.
	return c.w.Flush()
}

// Close flushes and closes the current segment.
func (c *Capture) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.w, c.f = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// rotateLocked closes the current segment, opens the next, and prunes
// the ring down to keep segments. Caller holds c.mu.
func (c *Capture) rotateLocked() error {
	if c.w != nil {
		c.w.Flush()
		c.f.Close()
	}
	name := filepath.Join(c.dir, fmt.Sprintf("%s%06d%s", capPrefix, c.seq, capSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("scenario: capture segment: %w", err)
	}
	c.f, c.w, c.written = f, bufio.NewWriter(f), 0
	c.seq++
	segs, err := captureSegments(c.dir)
	if err != nil {
		return err
	}
	for len(segs) > c.keep {
		if err := os.Remove(segs[0]); err != nil {
			return fmt.Errorf("scenario: capture prune: %w", err)
		}
		segs = segs[1:]
	}
	return nil
}

// captureSegments lists the ring's segment files, oldest first.
func captureSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: capture dir: %w", err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, capPrefix) && strings.HasSuffix(name, capSuffix) {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// ReadCapture loads every request in the ring, oldest first. Lines that
// fail to decode are skipped with a count, not fatal — a half-written
// tail after a crash must not poison the rest of the capture.
func ReadCapture(dir string) (reqs []CapturedRequest, skipped int, err error) {
	segs, err := captureSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			return nil, 0, fmt.Errorf("scenario: capture read: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		for sc.Scan() {
			var cr CapturedRequest
			if json.Unmarshal(sc.Bytes(), &cr) != nil || cr.Path == "" {
				skipped++
				continue
			}
			reqs = append(reqs, cr)
		}
		serr := sc.Err()
		f.Close()
		if serr != nil {
			return nil, 0, fmt.Errorf("scenario: capture scan %s: %w", seg, serr)
		}
	}
	return reqs, skipped, nil
}

// ProgramFromCapture turns captured traffic into a replayable Program.
// Arrival offsets preserve the captured inter-request spacing (the first
// request fires at 0); bodies that do not decode as designs are dropped
// with their count reported.
func ProgramFromCapture(name string, reqs []CapturedRequest) (prog *Program, dropped int, err error) {
	prog = &Program{Name: name}
	var epoch int64
	for _, cr := range reqs {
		var d signal.Design
		if json.Unmarshal(cr.Body, &d) != nil || d.Validate() != nil {
			dropped++
			continue
		}
		if len(prog.Requests) == 0 {
			epoch = cr.TimeMS
		}
		at := time.Duration(cr.TimeMS-epoch) * time.Millisecond
		if n := len(prog.Requests); n > 0 && at < prog.Requests[n-1].At {
			at = prog.Requests[n-1].At // clamp clock skew to keep replay ordered
		}
		prog.Requests = append(prog.Requests, Request{At: at, Path: cr.Path, Query: cr.Query, Design: &d})
	}
	if len(prog.Requests) == 0 {
		return nil, dropped, fmt.Errorf("scenario: capture holds no replayable requests (%d undecodable)", dropped)
	}
	return prog, dropped, nil
}
