package scenario

// End-to-end robustness invariants. cmd/streakload converts every
// response (and every async job's terminal state) into an Observation;
// CheckInvariants then judges the whole run. The invariants encode what
// "survived hostile traffic" means for streakd:
//
//   - transport-clean: every request got an HTTP response — no connection
//     errors, no client-side deadline blowouts. Shedding is fine; hanging
//     is not.
//   - shed-retry-after: every 429 carries a Retry-After of at least 1s —
//     shed responses must tell well-behaved clients when to come back.
//   - drain-retry-after: every 503 from a draining server carries
//     Retry-After too; drain is a retryable condition, not an outage.
//   - shed-budget: the shed fraction stays under the scenario's budget.
//     Overload shedding is correct behavior, collapse is not.
//   - no-uninjected-5xx: every 5xx is attributable to the armed fault
//     plan (its body carries the faultinject marker). A 5xx the chaos
//     schedule didn't cause is a real bug.
//   - audit-legal: every 2xx result that carries an audit verdict is
//     audit-clean — including (especially) incremental cache results
//     under ECO churn.
//   - jobs-complete: every accepted async job reaches a terminal state
//     and is never lost; FAILED is legal only when the failure is
//     injected.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Observation is the driver's record of one request's fate.
type Observation struct {
	// Index is the request's position in the program.
	Index int `json:"index"`
	// Path is the endpoint hit ("/route", "/jobs").
	Path string `json:"path"`
	// Status is the HTTP status, 0 when the request never got a response.
	Status int `json:"status"`
	// Latency is request round-trip time.
	Latency time.Duration `json:"latency"`
	// RetryAfter is the parsed Retry-After header in seconds, -1 if absent.
	RetryAfter int `json:"retry_after"`
	// ErrMsg is the error body text for non-2xx responses.
	ErrMsg string `json:"err_msg,omitempty"`
	// Cache is the solve-cache outcome on 2xx ("hit", "incremental",
	// "cold", "cold-fallback", "bypass").
	Cache string `json:"cache,omitempty"`
	// AuditOK is the response's audit verdict; nil when the response
	// carried none.
	AuditOK *bool `json:"audit_ok,omitempty"`
	// TransportErr is a client-side failure (dial, reset, timeout), ""
	// when the request completed.
	TransportErr string `json:"transport_err,omitempty"`
	// JobID is set for accepted /jobs submissions.
	JobID string `json:"job_id,omitempty"`
	// JobState is the job's final observed state.
	JobState string `json:"job_state,omitempty"`
	// JobError is the job's error text, if it failed.
	JobError string `json:"job_error,omitempty"`
	// JobLost marks a job the server accepted but later had no record of,
	// or that never reached a terminal state before the driver gave up.
	JobLost bool `json:"job_lost,omitempty"`
}

// Injected reports whether the observation's failure is attributable to
// the armed fault plan: injected solver and job errors carry the
// faultinject marker through error bodies and job error strings.
func (o Observation) Injected() bool {
	return strings.Contains(o.ErrMsg, "faultinject") || strings.Contains(o.JobError, "faultinject")
}

// CheckConfig tunes the invariant set for one run.
type CheckConfig struct {
	// MaxShedFrac is the largest tolerated fraction of 429 responses.
	// Default 0.8: even a burst scenario designed to shed must leave the
	// server serving, not collapsed.
	MaxShedFrac float64
	// FaultsArmed records whether a fault plan ran; when false, the
	// no-uninjected-5xx invariant tolerates no 5xx at all.
	FaultsArmed bool
}

// InvariantResult is one invariant's verdict over a whole run.
type InvariantResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// AllOK reports whether every invariant passed.
func AllOK(results []InvariantResult) bool {
	for _, r := range results {
		if !r.OK {
			return false
		}
	}
	return true
}

// CheckInvariants judges a completed run. It always returns the full
// invariant list, passed and failed, so a scenario report shows what was
// checked, not just what broke.
func CheckInvariants(obs []Observation, cfg CheckConfig) []InvariantResult {
	if cfg.MaxShedFrac <= 0 {
		cfg.MaxShedFrac = 0.8
	}
	var out []InvariantResult
	add := func(name string, bad []string) {
		res := InvariantResult{Name: name, OK: len(bad) == 0}
		if !res.OK {
			const keep = 5
			detail := bad
			if len(detail) > keep {
				detail = append(detail[:keep:keep], fmt.Sprintf("... and %d more", len(bad)-keep))
			}
			res.Detail = strings.Join(detail, "; ")
		}
		out = append(out, res)
	}

	var bad []string
	for _, o := range obs {
		if o.TransportErr != "" {
			bad = append(bad, fmt.Sprintf("req %d (%s): %s", o.Index, o.Path, o.TransportErr))
		}
	}
	add("transport-clean", bad)

	bad = nil
	for _, o := range obs {
		if o.Status == 429 && o.RetryAfter < 1 {
			bad = append(bad, fmt.Sprintf("req %d: 429 with Retry-After=%d", o.Index, o.RetryAfter))
		}
	}
	add("shed-retry-after", bad)

	bad = nil
	for _, o := range obs {
		if o.Status == 503 && strings.Contains(o.ErrMsg, "draining") && o.RetryAfter < 1 {
			bad = append(bad, fmt.Sprintf("req %d: draining 503 with Retry-After=%d", o.Index, o.RetryAfter))
		}
	}
	add("drain-retry-after", bad)

	bad = nil
	if len(obs) > 0 {
		shed := 0
		for _, o := range obs {
			if o.Status == 429 {
				shed++
			}
		}
		frac := float64(shed) / float64(len(obs))
		if frac > cfg.MaxShedFrac {
			bad = []string{fmt.Sprintf("shed %d/%d = %.2f > budget %.2f", shed, len(obs), frac, cfg.MaxShedFrac)}
		}
	}
	add("shed-budget", bad)

	bad = nil
	for _, o := range obs {
		if o.Status >= 500 && o.Status != 503 && !(cfg.FaultsArmed && o.Injected()) {
			bad = append(bad, fmt.Sprintf("req %d: uninjected %d: %.120s", o.Index, o.Status, o.ErrMsg))
		}
	}
	add("no-uninjected-5xx", bad)

	bad = nil
	for _, o := range obs {
		if o.Status >= 200 && o.Status < 300 && o.AuditOK != nil && !*o.AuditOK {
			bad = append(bad, fmt.Sprintf("req %d: 2xx with failed audit (cache=%s)", o.Index, o.Cache))
		}
	}
	add("audit-legal", bad)

	bad = nil
	for _, o := range obs {
		if o.JobID == "" {
			continue
		}
		switch {
		case o.JobLost:
			bad = append(bad, fmt.Sprintf("job %s (req %d): lost", o.JobID, o.Index))
		case o.JobState == "FAILED" && !(cfg.FaultsArmed && o.Injected()):
			bad = append(bad, fmt.Sprintf("job %s (req %d): uninjected failure: %.120s", o.JobID, o.Index, o.JobError))
		}
	}
	add("jobs-complete", bad)

	return out
}

// Summary aggregates a run for the scenario report.
type Summary struct {
	Requests      int            `json:"requests"`
	ByStatus      map[string]int `json:"by_status"`
	ByCache       map[string]int `json:"by_cache,omitempty"`
	ShedFrac      float64        `json:"shed_frac"`
	P50us         int64          `json:"p50_us"`
	P90us         int64          `json:"p90_us"`
	P99us         int64          `json:"p99_us"`
	JobsAccepted  int            `json:"jobs_accepted"`
	JobsSucceeded int            `json:"jobs_succeeded"`
	JobsFailed    int            `json:"jobs_failed"`
	JobsLost      int            `json:"jobs_lost"`
}

// Summarize reduces a run's observations to the scenario report numbers.
// Latency percentiles cover successful (2xx) responses only.
func Summarize(obs []Observation) Summary {
	s := Summary{Requests: len(obs), ByStatus: map[string]int{}, ByCache: map[string]int{}}
	var lat []time.Duration
	shed := 0
	for _, o := range obs {
		key := fmt.Sprintf("%d", o.Status)
		if o.TransportErr != "" {
			key = "transport-error"
		}
		s.ByStatus[key]++
		if o.Status == 429 {
			shed++
		}
		if o.Status >= 200 && o.Status < 300 {
			lat = append(lat, o.Latency)
			if o.Cache != "" {
				s.ByCache[o.Cache]++
			}
		}
		if o.JobID != "" {
			s.JobsAccepted++
			switch {
			case o.JobLost:
				s.JobsLost++
			case o.JobState == "SUCCEEDED":
				s.JobsSucceeded++
			case o.JobState == "FAILED":
				s.JobsFailed++
			}
		}
	}
	if len(obs) > 0 {
		s.ShedFrac = float64(shed) / float64(len(obs))
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) int64 {
			i := int(p * float64(len(lat)-1))
			return lat[i].Microseconds()
		}
		s.P50us, s.P90us, s.P99us = pct(0.50), pct(0.90), pct(0.99)
	}
	return s
}
