// Package scenario is Streak's traffic-program engine: it generates
// seeded, deterministic request sequences — not just designs — so the
// serving tier's robustness mechanisms (admission shedding, graceful
// drain, WAL-backed retry, fault injection, incremental ECO re-routing)
// can be exercised together under realistic, hostile traffic.
//
// A Program is a timed list of HTTP requests against streakd: each entry
// says when it fires (an offset from scenario start), where (/route or
// /jobs), and what design it carries. Programs come from three places:
//
//   - Generators: named scenario families built here — ECO churn streams
//     (a base design mutated step by step, replayed against the
//     incremental solve cache), adversarial congestion (blockage mazes,
//     capacity cliffs), degenerate shapes (single-bit groups, very wide
//     buses, pin-dense hotspots), and bursty arrival processes (open-loop
//     Poisson plus square-wave bursts). Same seed, same program — byte
//     for byte, which is what makes a chaos failure reproducible.
//   - Capture: streakd -record-dir keeps a ring of live request bodies
//     (capture.go); ProgramFromCapture replays them.
//   - Files: a Program round-trips through JSON.
//
// cmd/streakload fires programs at a running daemon and checks the
// invariant set in invariants.go end to end.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/benchgen"
	"repro/internal/faultinject"
	"repro/internal/signal"
)

// Request is one timed request of a traffic program.
type Request struct {
	// At is the offset from scenario start at which the request fires.
	At time.Duration `json:"at"`
	// Path is the endpoint: "/route" (synchronous) or "/jobs" (async).
	Path string `json:"path"`
	// Query is the raw query string appended to the path ("" for none),
	// e.g. "cache=off" for burst requests that must cost a real solve.
	Query string `json:"query,omitempty"`
	// Design is the request body.
	Design *signal.Design `json:"design"`
}

// Program is a complete scenario: a named, seeded request sequence plus
// the fault plan meant to run alongside it.
type Program struct {
	// Name is the scenario family ("churn", "churnchaos", ...).
	Name string `json:"name"`
	// Seed reproduces the program: Generate(name, cfg with Seed) is
	// deterministic.
	Seed int64 `json:"seed"`
	// FaultSpec, when non-empty, is the faultinject spec streakd should be
	// started with for the chaos half of the scenario (the load driver
	// uses it to attribute injected failures). Always parseable by
	// faultinject.ParseSpec.
	FaultSpec string `json:"fault_spec,omitempty"`
	// Requests is the timed sequence, ascending in At.
	Requests []Request `json:"requests"`
}

// Duration returns the offset of the last request.
func (p *Program) Duration() time.Duration {
	if len(p.Requests) == 0 {
		return 0
	}
	return p.Requests[len(p.Requests)-1].At
}

// Digest returns a hex SHA-256 of the program's canonical JSON — the
// reproducibility check: same scenario name + seed + config must yield
// the same digest on every run and every machine.
func (p *Program) Digest() string {
	data, err := json.Marshal(p)
	if err != nil {
		// Program marshals by construction; a failure here is a bug.
		panic(fmt.Sprintf("scenario: marshaling program: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Config tunes a scenario generator. The zero value plus a Seed is usable.
type Config struct {
	// Seed drives every random choice. Same seed, same program.
	Seed int64
	// Requests is the total request budget. Default 60.
	Requests int
	// Scale shrinks the Industry base designs, (0,1]. Default 0.06 — big
	// enough to exercise real solves, small enough for a soak run.
	Scale float64
	// Rate is the mean arrival rate in requests/second for the Poisson
	// phases. Default 8.
	Rate float64
	// JobsFrac is the fraction of requests submitted to the async /jobs
	// tier instead of synchronous /route. Default 0.15.
	JobsFrac float64
	// BusWidth is the widest degenerate bus the scenario emits. Default
	// 256; raise to 1000+ for a full-width stress run.
	BusWidth int
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 60
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 0.06
	}
	if c.Rate <= 0 {
		c.Rate = 8
	}
	if c.JobsFrac < 0 {
		c.JobsFrac = 0
	}
	if c.JobsFrac == 0 {
		c.JobsFrac = 0.15
	}
	if c.BusWidth <= 0 {
		c.BusWidth = 256
	}
	return c
}

// generators maps scenario family names to builders.
var generators = map[string]func(cfg Config) *Program{
	"churn":      genChurn,
	"congestion": genCongestion,
	"degenerate": genDegenerate,
	"burst":      genBurst,
	"churnchaos": genChurnChaos,
}

// Names lists the scenario families, sorted.
func Names() []string {
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generate builds the named scenario program. Same name + cfg always
// yields the identical program (assert with Digest).
func Generate(name string, cfg Config) (*Program, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have: %v)", name, Names())
	}
	return g(cfg.withDefaults()), nil
}

// pathFor picks /route or /jobs for one request.
func pathFor(r *rand.Rand, cfg Config) string {
	if r.Float64() < cfg.JobsFrac {
		return "/jobs"
	}
	return "/route"
}

// finish stamps arrivals onto the request list and wraps it in a program.
func finish(name string, cfg Config, reqs []Request, arrivals []time.Duration, faultSpec string) *Program {
	for i := range reqs {
		reqs[i].At = arrivals[i]
	}
	return &Program{Name: name, Seed: cfg.Seed, FaultSpec: faultSpec, Requests: reqs}
}

// genChurn is the ECO-churn stream: a scaled Industry base design mutated
// step by step (moved groups, added/removed blockages). Most steps replay
// the freshly mutated design — the incremental-cache path; some repeat
// the previous design verbatim — the exact-hit path.
func genChurn(cfg Config) *Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	base := benchgen.Scale(benchgen.Industry(1), cfg.Scale).Generate()
	cur := base
	reqs := make([]Request, 0, cfg.Requests)
	step := 0
	for i := 0; i < cfg.Requests; i++ {
		if i > 0 && r.Float64() >= 0.25 {
			next, edit := Mutate(r, cur)
			step++
			next.Name = fmt.Sprintf("%s-eco%03d-%s", base.Name, step, edit)
			cur = next
		} // else: repeat cur verbatim — an exact cache hit.
		reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: cur})
	}
	return finish("churn", cfg, reqs, PoissonArrivals(r, cfg.Requests, cfg.Rate), "")
}

// genCongestion alternates adversarial-congestion designs — blockage
// mazes and capacity cliffs — with churn steps that add and remove
// blockages right where capacity is scarce.
func genCongestion(cfg Config) *Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	maze := benchgen.Maze(cfg.Seed, 64, 64, 4)
	cliff := benchgen.CapacityCliff(cfg.Seed, 6)
	cur := cliff
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		var d *signal.Design
		switch i % 4 {
		case 0:
			d = maze
		case 1, 3:
			d = cur
		case 2:
			next, edit := Mutate(r, cur)
			next.Name = fmt.Sprintf("%s-eco%03d-%s", cliff.Name, i, edit)
			cur, d = next, next
		}
		reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: d})
	}
	return finish("congestion", cfg, reqs, PoissonArrivals(r, cfg.Requests, cfg.Rate), "")
}

// genDegenerate rotates through the degenerate shapes: single-bit groups,
// a BusWidth-wide bus, pin-dense hotspots and a minimal one-group design.
func genDegenerate(cfg Config) *Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	rotation := []*signal.Design{
		benchgen.SingleBitGroups(cfg.Seed, 24, 48, 48),
		benchgen.WideBus(cfg.Seed, cfg.BusWidth),
		benchgen.PinDense(cfg.Seed, 28),
		benchgen.SingleBitGroups(cfg.Seed+1, 1, 16, 16), // the minimal design
	}
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: rotation[i%len(rotation)]})
	}
	return finish("degenerate", cfg, reqs, PoissonArrivals(r, cfg.Requests, cfg.Rate), "")
}

// genBurst slams the admission queue: a small design fired in square-wave
// bursts far above the mean rate, with the solve cache bypassed so every
// request costs a real solve slot. Shedding is the expected behavior; the
// invariants check it stays bounded and well-formed (429 + Retry-After).
func genBurst(cfg Config) *Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	d := benchgen.Scale(benchgen.Industry(1), cfg.Scale/2).Generate()
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		reqs = append(reqs, Request{Path: "/route", Query: "cache=off", Design: d})
	}
	arrivals := SquareWaveArrivals(r, cfg.Requests, cfg.Rate/4, cfg.Rate*6, 5*time.Second)
	return finish("burst", cfg, reqs, arrivals, "")
}

// genChurnChaos is the soak scenario: an ECO churn stream interleaved
// with degenerate and maze traffic and cache-off burst pressure, arriving
// in square waves, with a deterministic fault plan armed alongside —
// bounded injected solver errors (exercising fallback/5xx attribution and
// job retries) and delays (exercising queueing and shed).
func genChurnChaos(cfg Config) *Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	base := benchgen.Scale(benchgen.Industry(1), cfg.Scale).Generate()
	maze := benchgen.Maze(cfg.Seed, 64, 64, 4)
	degenerate := []*signal.Design{
		benchgen.SingleBitGroups(cfg.Seed, 24, 48, 48),
		benchgen.WideBus(cfg.Seed, cfg.BusWidth),
		benchgen.PinDense(cfg.Seed, 28),
	}
	cur := base
	step := 0
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		roll := r.Float64()
		switch {
		case roll < 0.55: // churn stream
			if i > 0 && r.Float64() >= 0.25 {
				next, edit := Mutate(r, cur)
				step++
				next.Name = fmt.Sprintf("%s-eco%03d-%s", base.Name, step, edit)
				cur = next
			}
			reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: cur})
		case roll < 0.70: // degenerate rotation
			reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: degenerate[i%len(degenerate)]})
		case roll < 0.80: // adversarial congestion
			reqs = append(reqs, Request{Path: pathFor(r, cfg), Design: maze})
		default: // burst pressure: bypass the cache, cost a real slot
			reqs = append(reqs, Request{Path: "/route", Query: "cache=off", Design: cur})
		}
	}
	arrivals := SquareWaveArrivals(r, cfg.Requests, cfg.Rate/2, cfg.Rate*4, 5*time.Second)
	spec, err := faultinject.FormatSpec(chaosSchedule())
	if err != nil {
		panic(fmt.Sprintf("scenario: chaos schedule does not format: %v", err))
	}
	return finish("churnchaos", cfg, reqs, arrivals, spec)
}

// chaosSchedule is the deterministic fault plan co-scheduled with the
// churnchaos scenario. Every action is bounded by #times so the injected
// damage is finite and attributable: solver errors carry the faultinject
// marker into response bodies (letting the driver separate injected 5xx
// from real ones) and delays stretch solves into the admission queue
// without failing them.
func chaosSchedule() []faultinject.SpecEntry {
	return []faultinject.SpecEntry{
		{Point: faultinject.PDSolve, Act: faultinject.Action{Err: "injected chaos", After: 3, Times: 2}},
		{Point: faultinject.HierTile, Act: faultinject.Action{Delay: 50 * time.Millisecond, Times: 3}},
		{Point: faultinject.JobsRun, Act: faultinject.Action{Err: "injected chaos", After: 1, Times: 2}},
		{Point: faultinject.RouteBuild, Act: faultinject.Action{Delay: 20 * time.Millisecond, After: 5, Times: 5}},
	}
}
