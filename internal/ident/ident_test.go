package ident

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/signal"
)

// twoStyleGroup reproduces the Fig. 3(a) situation: a group with two
// routing styles — bits driving a sink to the east, and bits driving a sink
// to the northeast.
func twoStyleGroup() signal.Group {
	g := signal.Group{Name: "g"}
	for i := 0; i < 3; i++ {
		g.Bits = append(g.Bits, signal.Bit{
			Name: "east", Driver: 0,
			Pins: []signal.Pin{{Loc: geom.Pt(0, i)}, {Loc: geom.Pt(8, i)}},
		})
	}
	for i := 0; i < 2; i++ {
		g.Bits = append(g.Bits, signal.Bit{
			Name: "ne", Driver: 0,
			Pins: []signal.Pin{{Loc: geom.Pt(0, 10+i)}, {Loc: geom.Pt(8, 14+i)}},
		})
	}
	return g
}

func TestPartitionTwoStyles(t *testing.T) {
	g := twoStyleGroup()
	objs := Partition(0, &g)
	if len(objs) != 2 {
		t.Fatalf("objects = %d, want 2", len(objs))
	}
	if len(objs[0].BitIdx) != 3 || len(objs[1].BitIdx) != 2 {
		t.Errorf("object sizes = %d,%d", len(objs[0].BitIdx), len(objs[1].BitIdx))
	}
	// Every member of an object shares the driver SV.
	for _, o := range objs {
		want := g.Bits[o.BitIdx[0]].DriverSV()
		for _, bi := range o.BitIdx {
			if g.Bits[bi].DriverSV() != want {
				t.Errorf("bit %d driver SV differs within object", bi)
			}
		}
	}
}

func TestPartitionSingletons(t *testing.T) {
	// Bits with genuinely different shapes each get their own object.
	g := signal.Group{Bits: []signal.Bit{
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(5, 0)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 1)}, {Loc: geom.Pt(0, 6)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 2)}, {Loc: geom.Pt(5, 2)}, {Loc: geom.Pt(5, 7)}}},
	}}
	objs := Partition(0, &g)
	if len(objs) != 3 {
		t.Fatalf("objects = %d, want 3", len(objs))
	}
}

func TestPartitionCoversAllBitsExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := signal.Group{}
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			np := 2 + r.Intn(4)
			b := signal.Bit{Driver: 0}
			base := geom.Pt(r.Intn(10), r.Intn(10))
			b.Pins = append(b.Pins, signal.Pin{Loc: base})
			for j := 1; j < np; j++ {
				b.Pins = append(b.Pins, signal.Pin{Loc: base.Add(geom.Pt(r.Intn(9)-4, r.Intn(9)-4))})
			}
			g.Bits = append(g.Bits, b)
		}
		objs := Partition(0, &g)
		seen := map[int]int{}
		for _, o := range objs {
			for _, bi := range o.BitIdx {
				seen[bi]++
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: covered %d of %d bits", trial, len(seen), n)
		}
		for bi, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: bit %d in %d objects", trial, bi, c)
			}
		}
	}
}

func TestPinMapsAreValidPermutations(t *testing.T) {
	g := twoStyleGroup()
	objs := Partition(0, &g)
	for oi, o := range objs {
		rep := o.RepBit(&g)
		for k, bi := range o.BitIdx {
			m := o.PinMap[k]
			if len(m) != len(rep.Pins) {
				t.Fatalf("object %d member %d: map len %d, want %d", oi, k, len(m), len(rep.Pins))
			}
			used := map[int]bool{}
			for repPin, pin := range m {
				if pin < 0 || pin >= len(g.Bits[bi].Pins) {
					t.Fatalf("object %d: mapped pin %d out of range", oi, pin)
				}
				if used[pin] {
					t.Fatalf("object %d: pin %d mapped twice", oi, pin)
				}
				used[pin] = true
				// Mapped pins share the same similarity vector.
				if rep.PinSV(repPin) != g.Bits[bi].PinSV(pin) {
					t.Fatalf("object %d: mapped pins have different SVs", oi)
				}
			}
		}
	}
}

func TestPinMapDriverToDriver(t *testing.T) {
	g := twoStyleGroup()
	for _, o := range Partition(0, &g) {
		rep := o.RepBit(&g)
		for k, bi := range o.BitIdx {
			if got := o.PinMap[k][rep.Driver]; got != g.Bits[bi].Driver {
				t.Errorf("driver mapped to pin %d, want driver %d", got, g.Bits[bi].Driver)
			}
		}
	}
}

func TestRepIsCentral(t *testing.T) {
	g := twoStyleGroup()
	objs := Partition(0, &g)
	o := objs[0] // three east bits at y = 0,1,2; center bit is y=1 (index 1)
	if o.BitIdx[o.Rep] != 1 {
		t.Errorf("representative = bit %d, want 1", o.BitIdx[o.Rep])
	}
}

func TestPartitionDesign(t *testing.T) {
	d := &signal.Design{
		Name: "d",
		Grid: signal.GridSpec{W: 32, H: 32, NumLayers: 4, EdgeCap: 4},
		Groups: []signal.Group{
			twoStyleGroup(),
			{Bits: []signal.Bit{{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(20, 20)}, {Loc: geom.Pt(25, 20)}}}}},
		},
	}
	objs := PartitionDesign(d)
	if len(objs) != 3 {
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	if objs[0].GroupIdx != 0 || objs[2].GroupIdx != 1 {
		t.Error("group indices wrong")
	}
}

func TestMirroredBitsSeparate(t *testing.T) {
	// A bit with sink to the east and one with sink to the west must not
	// share an object even though distances match.
	g := signal.Group{Bits: []signal.Bit{
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(5, 0)}, {Loc: geom.Pt(9, 0)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(5, 1)}, {Loc: geom.Pt(1, 1)}}},
	}}
	if objs := Partition(0, &g); len(objs) != 2 {
		t.Fatalf("objects = %d, want 2", len(objs))
	}
}
