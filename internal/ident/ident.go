// Package ident implements Streak's identification stage (§III-A): it
// partitions each signal group into routing objects such that every bit in
// an object has the same similarity vector for every pin, which guarantees
// an equivalent topology exists for all of them. The partition is
// hierarchical, as in Fig. 5(b): bits are first split by driver SV (cheap),
// then by the SVs of the remaining pins, so dissimilar bits are separated
// early without computing every pin's vector against every other bit.
package ident

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/signal"
)

// Object is one routing object: a maximal set of bits of a group that can
// share an equivalent topology. Pins of every member bit map 1:1 onto the
// pins of the representative bit.
type Object struct {
	// GroupIdx is the index of the owning group in the design.
	GroupIdx int
	// BitIdx lists the member bits as indices into the group's Bits.
	BitIdx []int
	// Rep is the position inside BitIdx of the representative bit (the one
	// whose driver is closest to the object's pin bounding-box center, per
	// §III-B1 "a bit in the center region").
	Rep int
	// PinMap[k][i] gives, for member k, the pin index in that bit which
	// corresponds to pin i of the representative bit.
	PinMap [][]int
}

// RepBit returns the representative bit of the object within the group.
func (o *Object) RepBit(g *signal.Group) *signal.Bit {
	return &g.Bits[o.BitIdx[o.Rep]]
}

// Bits returns the member bits of the object in order.
func (o *Object) Bits(g *signal.Group) []*signal.Bit {
	out := make([]*signal.Bit, len(o.BitIdx))
	for i, bi := range o.BitIdx {
		out[i] = &g.Bits[bi]
	}
	return out
}

// signature produces the canonical isomorphism key of a bit: its pin count,
// the driver SV, and the sorted SVs of all pins. Bits are topologically
// equivalent candidates iff their signatures match.
func signature(b *signal.Bit) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d|d%s|", len(b.Pins), b.DriverSV())
	svs := make([]string, 0, len(b.Pins))
	for i := range b.Pins {
		svs = append(svs, b.PinSV(i).String())
	}
	sort.Strings(svs)
	sb.WriteString(strings.Join(svs, ";"))
	return sb.String()
}

// Partition splits the group into routing objects. Bits with identical
// per-pin similarity vectors land in the same object; each object carries a
// representative bit and per-bit pin mappings. The order of objects is
// deterministic (by first member bit index).
func Partition(groupIdx int, g *signal.Group) []Object {
	// Level 1: split by driver SV (the middle, blue nodes of Fig. 5(b)).
	byDriver := make(map[signal.SV][]int)
	for bi := range g.Bits {
		sv := g.Bits[bi].DriverSV()
		byDriver[sv] = append(byDriver[sv], bi)
	}
	// Level 2: within a driver class, split by the full pin-SV signature
	// (the gray leaf nodes). Only bits that already share a driver SV reach
	// this more expensive comparison.
	bySig := make(map[string][]int)
	for _, members := range byDriver {
		for _, bi := range members {
			sig := signature(&g.Bits[bi])
			bySig[sig] = append(bySig[sig], bi)
		}
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return bySig[sigs[i]][0] < bySig[sigs[j]][0] })

	var out []Object
	for _, s := range sigs {
		members := bySig[s]
		sort.Ints(members)
		o := Object{GroupIdx: groupIdx, BitIdx: members}
		o.Rep = centerRep(g, members)
		o.PinMap = buildPinMaps(g, members, o.Rep)
		out = append(out, o)
	}
	return out
}

// PartitionDesign partitions every group of the design and returns the
// objects in group order.
func PartitionDesign(d *signal.Design) []Object {
	var out []Object
	for gi := range d.Groups {
		out = append(out, Partition(gi, &d.Groups[gi])...)
	}
	return out
}

// centerRep picks the member whose driver is closest to the center of the
// object's pin bounding box.
func centerRep(g *signal.Group, members []int) int {
	var pts []geom.Point
	for _, bi := range members {
		pts = append(pts, g.Bits[bi].PinLocs()...)
	}
	c := geom.BBox(pts).Center()
	best, bestDist := 0, int(^uint(0)>>1)
	for k, bi := range members {
		if d := geom.Dist(g.Bits[bi].DriverLoc(), c); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// canonicalPinOrder returns the bit's pin indices sorted by (SV, offset
// from driver). Pins with equal SVs are disambiguated by their relative
// offset, making cross-bit mapping deterministic and consistent.
func canonicalPinOrder(b *signal.Bit) []int {
	idx := make([]int, len(b.Pins))
	keys := make([]string, len(b.Pins))
	drv := b.DriverLoc()
	for i := range idx {
		idx[i] = i
		off := b.Pins[i].Loc.Sub(drv)
		keys[i] = fmt.Sprintf("%s|%08d|%08d", b.PinSV(i), off.X+1<<20, off.Y+1<<20)
	}
	sort.Slice(idx, func(a, c int) bool { return keys[idx[a]] < keys[idx[c]] })
	return idx
}

// buildPinMaps maps each member bit's pins onto the representative's pins.
// Because all members share the same SV signature, sorting both pin lists
// by canonical order aligns corresponding pins positionally.
func buildPinMaps(g *signal.Group, members []int, rep int) [][]int {
	repOrder := canonicalPinOrder(&g.Bits[members[rep]])
	maps := make([][]int, len(members))
	for k, bi := range members {
		order := canonicalPinOrder(&g.Bits[bi])
		m := make([]int, len(order))
		for pos, repPin := range repOrder {
			m[repPin] = order[pos]
		}
		maps[k] = m
	}
	return maps
}
