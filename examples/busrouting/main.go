// Bus routing: the classic scenario from the paper's introduction — wide
// two-pin buses competing for a congested channel. Compares the manual
// (capacity-oblivious, bit-by-bit) baseline against the Streak flow:
// manual routes everything but overflows the channel; Streak spreads the
// buses across layers and detour topologies with zero overflow. Run with:
//
//	go run ./examples/busrouting
package main

import (
	"fmt"
	"log"
	"os"

	streak "repro"

	"repro/internal/geom"
)

func main() {
	// A narrow channel: 48x24 grid, 2 layer pairs, 1 track per edge.
	design := &streak.Design{
		Name: "channel",
		Grid: streak.GridSpec{W: 48, H: 24, NumLayers: 4, EdgeCap: 1, Pitch: 1},
	}

	// Three 6-bit buses crossing the same rows: total demand 18 tracks on
	// rows 8..13, against 2 H layers x 1 track x 6 rows = 12. The channel
	// is oversubscribed: manual overflows it, Streak shifts trunks onto
	// neighboring rows and the second H layer, drops what cannot legally
	// fit, and never overflows.
	for g := 0; g < 3; g++ {
		var bus streak.Group
		bus.Name = fmt.Sprintf("bus%d", g)
		for b := 0; b < 6; b++ {
			bus.Bits = append(bus.Bits, streak.Bit{
				Name:   fmt.Sprintf("bus%d[%d]", g, b),
				Driver: 0,
				Pins: []streak.Pin{
					{Loc: geom.Pt(2+2*g, 8+b)},
					{Loc: geom.Pt(40+2*g, 8+b)},
				},
			})
		}
		design.Groups = append(design.Groups, bus)
	}

	manual, err := streak.ManualBaseline(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual:  route %.0f%%  WL %-5d overflow %d (%d hot edges)\n",
		manual.Metrics.RouteFrac*100, int(manual.Metrics.WL),
		manual.Metrics.Overflow, manual.Metrics.OverflowEdges)

	res, err := streak.Route(design, streak.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streak:  route %.0f%%  WL %-5d overflow %d  Avg(Reg) %.0f%%\n",
		res.Metrics.RouteFrac*100, int(res.Metrics.WL),
		res.Metrics.Overflow, res.Metrics.AvgReg*100)

	// Show where each bus landed: regularity means all bits of a group
	// share one layer pair.
	for gi, g := range design.Groups {
		layers := map[[2]int]int{}
		for bi := range g.Bits {
			br := res.Routing.Bits[gi][bi]
			if br.Routed {
				layers[[2]int{br.HLayer, br.VLayer}]++
			}
		}
		fmt.Printf("  %s layers: %v\n", g.Name, layers)
	}

	fmt.Println("\nmanual congestion (note the '@' overflow row):")
	streak.WriteHeatmap(os.Stdout, manual, 48)
	fmt.Println("\nstreak congestion:")
	streak.WriteHeatmap(os.Stdout, res, 48)
}
