// Macro blockages: the Fig. 7 scenario — a signal group whose straight
// path is blocked by a macro (a zero-capacity region on the lower layers).
// The global pass cannot push every bit through the gap, so post-opt
// clustering splits the group into multiple routing styles that bypass the
// obstacle. Run with:
//
//	go run ./examples/macros
package main

import (
	"fmt"
	"log"
	"os"

	streak "repro"

	"repro/internal/geom"
)

func main() {
	design := &streak.Design{
		Name: "macros",
		Grid: streak.GridSpec{W: 40, H: 24, NumLayers: 4, EdgeCap: 2, Pitch: 1},
	}
	// A macro blocks the lower layer pair across the whole channel band,
	// and even the upper horizontal layer over the band's middle rows —
	// bits there must shift rows to get around (Fig. 7's situation).
	for _, layer := range []int{0, 1} {
		design.Grid.Blockages = append(design.Grid.Blockages, streak.Blockage{
			Layer: layer,
			Rect:  geom.Rect{Lo: geom.Pt(16, 6), Hi: geom.Pt(24, 18)},
		})
	}
	design.Grid.Blockages = append(design.Grid.Blockages, streak.Blockage{
		Layer: 2,
		Rect:  geom.Rect{Lo: geom.Pt(16, 10), Hi: geom.Pt(24, 13)},
	})

	// An 8-bit bus wants to cross exactly where the macro sits.
	var bus streak.Group
	bus.Name = "cross"
	for b := 0; b < 8; b++ {
		bus.Bits = append(bus.Bits, streak.Bit{
			Name:   fmt.Sprintf("cross[%d]", b),
			Driver: 0,
			Pins: []streak.Pin{
				{Loc: geom.Pt(3, 8+b)},
				{Loc: geom.Pt(36, 8+b)},
			},
		})
	}
	design.Groups = append(design.Groups, bus)

	noPost := streak.DefaultOptions()
	noPost.PostOpt, noPost.Clustering, noPost.Refinement = false, false, false
	before, err := streak.Route(design, noPost)
	if err != nil {
		log.Fatal(err)
	}
	after, err := streak.Route(design, streak.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	count := func(res *streak.Result) int {
		n := 0
		for _, br := range res.Routing.Bits[0] {
			if br.Routed {
				n++
			}
		}
		return n
	}
	fmt.Printf("global pass only:  %d/8 bits routed (no single shared topology clears the macro)\n", count(before))
	fmt.Printf("with clustering:   %d/8 bits routed, overflow %d\n", count(after), after.Metrics.Overflow)

	// Show the styles the clustering produced: bits that kept the straight
	// topology vs bits rerouted around the macro on other layers/rows.
	styles := map[string][]string{}
	for bi, br := range after.Routing.Bits[0] {
		if !br.Routed {
			styles["UNROUTED"] = append(styles["UNROUTED"], bus.Bits[bi].Name)
			continue
		}
		key := fmt.Sprintf("H=M%d V=M%d bends=%d", br.HLayer+2, br.VLayer+2, br.Tree.Bends())
		styles[key] = append(styles[key], bus.Bits[bi].Name)
	}
	fmt.Println("\nrouting styles after clustering:")
	for key, bits := range styles {
		fmt.Printf("  %-24s %v\n", key, bits)
	}

	fmt.Println("\ncongestion (macro region visible as the blocked band):")
	streak.WriteHeatmap(os.Stdout, after, 40)
}
