// Multipin groups with source-to-sink distance refinement: the Fig. 4(b) /
// Fig. 9 scenario. One group carries bits whose mapped sinks sit at very
// different distances from their drivers; the refinement stage inserts
// twisting detours for the short pins so arrival times match. Run with:
//
//	go run ./examples/multipin
package main

import (
	"fmt"
	"log"

	streak "repro"

	"repro/internal/geom"
)

func main() {
	design := &streak.Design{
		Name: "skewed",
		Grid: streak.GridSpec{W: 40, H: 40, NumLayers: 4, EdgeCap: 6, Pitch: 1},
	}

	// Three-pin bits: driver, a far east sink, and a mid sink. The last
	// bit's east sink is much closer, creating a distance-deviation
	// violation within the group.
	var g streak.Group
	g.Name = "skew"
	for b := 0; b < 4; b++ {
		east := 30
		if b == 3 {
			east = 10 // the short bit
		}
		g.Bits = append(g.Bits, streak.Bit{
			Name:   fmt.Sprintf("skew[%d]", b),
			Driver: 0,
			Pins: []streak.Pin{
				{Loc: geom.Pt(4, 10+b)},
				{Loc: geom.Pt(east, 10+b)},
			},
		})
	}
	design.Groups = append(design.Groups, g)

	// Route twice: refinement off, then on.
	off := streak.DefaultOptions()
	off.Refinement = false
	resOff, err := streak.Route(design, off)
	if err != nil {
		log.Fatal(err)
	}
	resOn, err := streak.Route(design, streak.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("refinement off: Vio(dst)=%d  WL=%d\n", resOff.Metrics.VioDst, int(resOff.Metrics.WL))
	fmt.Printf("refinement on:  Vio(dst)=%d  WL=%d  (pins fixed: %d, detour WL: +%d)\n",
		resOn.Metrics.VioDst, int(resOn.Metrics.WL), resOn.Refine.PinsFixed, resOn.Refine.AddedWL)

	// Show the per-bit source-to-sink distances before/after.
	show := func(label string, res *streak.Result) {
		fmt.Printf("\n%s source-to-sink distances:\n", label)
		for bi, bit := range design.Groups[0].Bits {
			br := res.Routing.Bits[0][bi]
			if !br.Routed {
				fmt.Printf("  %-8s unrouted\n", bit.Name)
				continue
			}
			d := br.Tree.PathLength(bit.Pins[0].Loc, bit.Pins[1].Loc)
			fmt.Printf("  %-8s dist=%-3d  %s\n", bit.Name, d, br.Tree)
		}
	}
	show("before refinement", resOff)
	show("after refinement", resOn)
}
