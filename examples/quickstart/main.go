// Quickstart: build a tiny design by hand, route it with the full Streak
// flow, and inspect the result. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	streak "repro"

	"repro/internal/geom"
)

func main() {
	// A 32x32 G-cell grid with four alternating H/V layers, four routing
	// tracks per edge.
	design := &streak.Design{
		Name: "quickstart",
		Grid: streak.GridSpec{W: 32, H: 32, NumLayers: 4, EdgeCap: 4, Pitch: 1},
	}

	// One 4-bit signal group: adjacent drivers on the left edge, sinks 20
	// cells to the east. All four bits share pin geometry, so Streak
	// identifies them as one routing object with a common topology.
	var bus streak.Group
	bus.Name = "data[3:0]"
	for b := 0; b < 4; b++ {
		bus.Bits = append(bus.Bits, streak.Bit{
			Name:   fmt.Sprintf("data[%d]", b),
			Driver: 0,
			Pins: []streak.Pin{
				{Loc: geom.Pt(4, 10+b)},
				{Loc: geom.Pt(24, 10+b)},
			},
		})
	}
	design.Groups = append(design.Groups, bus)

	// A second group with a multipin bit: one driver fanning out to two
	// sinks. Streak generates a backbone Steiner topology and replicates
	// it across the group's bits.
	var fan streak.Group
	fan.Name = "ctrl[1:0]"
	for b := 0; b < 2; b++ {
		fan.Bits = append(fan.Bits, streak.Bit{
			Name:   fmt.Sprintf("ctrl[%d]", b),
			Driver: 0,
			Pins: []streak.Pin{
				{Loc: geom.Pt(6, 20+b)},
				{Loc: geom.Pt(20, 20+b)},
				{Loc: geom.Pt(14, 26+b)},
			},
		})
	}
	design.Groups = append(design.Groups, fan)

	res, err := streak.Route(design, streak.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("routed %d/%d groups (%.0f%%), wirelength %d, Avg(Reg) %.0f%%, overflow %d\n",
		m.RoutedGroups, m.Groups, m.RouteFrac*100, int(m.WL), m.AvgReg*100, m.Overflow)

	// Print every bit's routed tree.
	for gi, g := range design.Groups {
		for bi, bit := range g.Bits {
			br := res.Routing.Bits[gi][bi]
			if !br.Routed {
				fmt.Printf("  %-8s UNROUTED\n", bit.Name)
				continue
			}
			fmt.Printf("  %-8s H=M%d V=M%d  %s\n", bit.Name, br.HLayer+2, br.VLayer+2, br.Tree)
		}
	}

	fmt.Println("\ncongestion map:")
	streak.WriteHeatmap(log.Writer(), res, 32)
}
