// Congestion-map comparison on a generated industrial benchmark — the
// Fig. 11/12 scenario at example scale. Routes a scaled Industry7 with the
// manual baseline and with Streak, printing both heatmaps side by side in
// sequence. Run with:
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"os"

	streak "repro"

	"repro/internal/benchgen"
)

func main() {
	spec := benchgen.Scale(benchgen.Industry(7), 0.15)
	design := spec.Generate()
	fmt.Printf("%s: %d groups, %d nets, %d pins on a %dx%d grid\n",
		design.Name, len(design.Groups), design.NumNets(), design.NumPins(),
		design.Grid.W, design.Grid.H)

	manual, err := streak.ManualBaseline(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(a) manual design: route %.2f%%, WL %.2fe5, overflow %d\n",
		manual.Metrics.RouteFrac*100, manual.Metrics.WL/1e5, manual.Metrics.Overflow)
	streak.WriteHeatmap(os.Stdout, manual, 56)

	res, err := streak.Route(design, streak.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(b) Streak: route %.2f%%, WL %.2fe5, Avg(Reg) %.2f%%, overflow %d\n",
		res.Metrics.RouteFrac*100, res.Metrics.WL/1e5, res.Metrics.AvgReg*100, res.Metrics.Overflow)
	streak.WriteHeatmap(os.Stdout, res, 56)
}
