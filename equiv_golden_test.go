package streak

// Golden-fingerprint equivalence suite for the hot-kernel data-layout work:
// every solver's full outcome (objective bits, routed canonical geometry,
// audit outcome) and the built problem's complete candidate set are hashed
// into fingerprints pinned against goldens captured on the pre-refactor
// code. Any representation change (SoA candidate edge lists, bitset
// capacity kernels, pooled scratch, warm-started B&B simplex) that alters a
// single routed segment, layer choice, cost bit, or audit verdict fails
// these tests.
//
// Regenerate (prints the golden map literal; only do this to extend
// coverage, never to paper over a diff):
//
//	STREAK_WRITE_GOLDEN=1 go test -run TestGoldenFingerprints -v .
//
// Preset coverage is bounded by determinism: hier Industry5 hits a per-tile
// wall-clock timeout at this scale and exact is only run where it proves
// optimality in seconds, so those combinations are excluded by design.

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/audit"
	"repro/internal/benchgen"
	"repro/internal/exact"
	"repro/internal/hier"
	"repro/internal/pd"
	"repro/internal/route"
	"repro/internal/topo"
)

// equivScale matches benchScale so golden problems and bench problems are
// the same designs.
const equivScale = benchScale

// goldenFingerprints pins the seed (pre-refactor) outcomes. Keys are
// "<preset>/<flow>"; values come from STREAK_WRITE_GOLDEN output.
var goldenFingerprints = map[string]string{
	"Industry1/exact":    "obj=40aafa0000000000 geo=f7cbdd56017d9729 audit=ok",
	"Industry1/hier":     "obj=40ab0a0000000000 geo=2ebb8257164164bb audit=ok",
	"Industry1/hier-par": "obj=40bd2d0000000000 geo=e4eeef50cb7c412b audit=ok",
	"Industry1/pd":       "obj=40aafa0000000000 geo=5a58fea675bfd2cd audit=ok",
	"Industry1/problem":  "objs=17 cands=204 hash=c861cc3cc586596c",
	"Industry3/exact":    "obj=40ae7e0000000000 geo=a1398d324a896618 audit=ok",
	"Industry3/hier":     "obj=40ae960000000000 geo=36fff32a83cb3856 audit=ok",
	"Industry3/hier-par": "obj=40c3638000000000 geo=f4c962c2bfc711da audit=ok",
	"Industry3/pd":       "obj=40ae7e0000000000 geo=838f4f2e86584878 audit=ok",
	"Industry3/problem":  "objs=20 cands=240 hash=eeff75d37d32d31d",
	"Industry5/pd":       "obj=40d22a36db6db6db geo=730b109c398530fa audit=ok",
	"Industry5/problem":  "objs=61 cands=732 hash=977c4f614345df7e",
	"Industry7/hier":     "obj=40b6aa0000000000 geo=c5f7b0c150333057 audit=ok",
	"Industry7/hier-par": "obj=40b6aa0000000000 geo=c5f7b0c150333057 audit=ok",
	"Industry7/pd":       "obj=40b6aa0000000000 geo=cf161fbcdf049ddf audit=ok",
	"Industry7/problem":  "objs=15 cands=180 hash=440e06d4ce441187",
}

// candUsageTriples returns a candidate's per-edge usage as sorted
// (layer, idx, need) triples, independent of the underlying representation.
// This is the single place the suite touches candidate edge storage; when
// the storage changes, this helper follows and the goldens must not.
func candUsageTriples(c *topo.Candidate) [][3]int {
	tr := make([][3]int, 0, len(c.Edges))
	for _, e := range c.Edges {
		tr = append(tr, [3]int{int(e.Layer), int(e.Idx), int(e.N)})
	}
	sort.Slice(tr, func(a, b int) bool {
		if tr[a][0] != tr[b][0] {
			return tr[a][0] < tr[b][0]
		}
		return tr[a][1] < tr[b][1]
	})
	return tr
}

// fpProblem digests the complete candidate set: per object the candidate
// count, per candidate topology index, layers, wirelength, vias, cost bits
// and the full sorted edge-usage list.
func fpProblem(p *route.Problem) string {
	h := fnv.New64a()
	nc := 0
	for i := range p.Cands {
		fmt.Fprintf(h, "o%d:%d;", i, len(p.Cands[i]))
		for j := range p.Cands[i] {
			c := &p.Cands[i][j]
			nc++
			fmt.Fprintf(h, "c%d,%d,%d,%d,%d,%d;", c.TopoIdx, c.HLayer, c.VLayer, c.WL, c.Vias, c.Cost)
			for _, t := range candUsageTriples(c) {
				fmt.Fprintf(h, "e%d.%d.%d;", t[0], t[1], t[2])
			}
		}
	}
	return fmt.Sprintf("objs=%d cands=%d hash=%016x", len(p.Objects), nc, h.Sum64())
}

// fpSolve digests one solve outcome: objective bits, routed canonical
// geometry (layers + canonical segments per bit, plus solution objects) and
// the independent audit verdict.
func fpSolve(p *route.Problem, obj float64, a route.Assignment) string {
	h := fnv.New64a()
	r := p.ExtractRouting(a)
	for gi := range r.Bits {
		for bi := range r.Bits[gi] {
			b := r.Bits[gi][bi]
			if !b.Routed {
				fmt.Fprintf(h, "u;")
				continue
			}
			fmt.Fprintf(h, "b%d,%d:", b.HLayer, b.VLayer)
			for _, s := range b.Tree.Canon().Segs {
				fmt.Fprintf(h, "%d.%d.%d.%d;", s.A.X, s.A.Y, s.B.X, s.B.Y)
			}
		}
		for _, so := range r.Objects[gi] {
			fmt.Fprintf(h, "s%d,%d,%d,%v;", so.RepBit, so.HLayer, so.VLayer, so.BitIdx)
		}
	}
	rep := audit.Check(p.Design, p.Grid, r)
	verdict := "ok"
	if !rep.OK() {
		verdict = fmt.Sprintf("%d", len(rep.Violations))
	}
	return fmt.Sprintf("obj=%016x geo=%016x audit=%s", math.Float64bits(obj), h.Sum64(), verdict)
}

// equivPresets lists the Industry presets with the flows that are
// deterministic at equivScale (see the package comment for exclusions).
var equivPresets = []struct {
	n           int
	hier, exact bool
}{
	{n: 1, hier: true, exact: true},
	{n: 3, hier: true, exact: true},
	{n: 5},
	{n: 7, hier: true},
}

// computeFingerprints runs every deterministic preset/flow combination and
// returns its fingerprint map. workers sets route.Options.Workers for the
// problem build (candidate sets are bit-identical across worker counts).
func computeFingerprints(t *testing.T, workers int) map[string]string {
	t.Helper()
	got := make(map[string]string)
	for _, pr := range equivPresets {
		name := fmt.Sprintf("Industry%d", pr.n)
		d := benchgen.Scale(benchgen.Industry(pr.n), equivScale).Generate()
		p, err := route.Build(d, route.Options{Workers: workers})
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		got[name+"/problem"] = fpProblem(p)

		res := pd.Solve(p)
		got[name+"/pd"] = fpSolve(p, res.Objective, res.Assignment)

		if pr.hier {
			hs := hier.Solve(p, hier.Options{Tiles: 2})
			if hs.TilesTimedOut > 0 {
				t.Fatalf("%s: hier tile timed out; preset is not golden-safe", name)
			}
			got[name+"/hier"] = fpSolve(p, hs.Objective, hs.Assignment)
			hp := hier.Solve(p, hier.Options{Tiles: 2, Workers: 4})
			if hp.TilesTimedOut > 0 {
				t.Fatalf("%s: parallel hier tile timed out; preset is not golden-safe", name)
			}
			got[name+"/hier-par"] = fpSolve(p, hp.Objective, hp.Assignment)
		}
		if pr.exact {
			es, err := exact.Solve(p, exact.Options{})
			if err != nil {
				t.Fatalf("%s: exact: %v", name, err)
			}
			if es.TimedOut {
				t.Fatalf("%s: exact timed out; preset is not golden-safe", name)
			}
			got[name+"/exact"] = fpSolve(p, es.Objective, es.Assignment)
		}
	}
	return got
}

// TestGoldenFingerprints pins every deterministic solver outcome against
// the pre-refactor goldens (sequential build).
func TestGoldenFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exact solves")
	}
	got := computeFingerprints(t, 1)
	if os.Getenv("STREAK_WRITE_GOLDEN") != "" {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("\t%q: %q,\n", k, got[k])
		}
		return
	}
	for k, want := range goldenFingerprints {
		if got[k] != want {
			t.Errorf("%s:\n got %s\nwant %s", k, got[k], want)
		}
	}
	for k := range got {
		if _, ok := goldenFingerprints[k]; !ok {
			t.Errorf("%s: computed but not pinned; regenerate goldens", k)
		}
	}
}

// TestGoldenFingerprintsParallelBuild proves the parallel problem build and
// the solves on top of it reproduce the sequential goldens bit-for-bit.
func TestGoldenFingerprintsParallelBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exact solves")
	}
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 4
	}
	got := computeFingerprints(t, w)
	for k, want := range goldenFingerprints {
		if got[k] != want {
			t.Errorf("%s (workers=%d):\n got %s\nwant %s", k, w, got[k], want)
		}
	}
}
